#include "baseline/msccl.hpp"

#include "core/errors.hpp"
#include "gpu/kernel.hpp"

#include <algorithm>

namespace mscclpp::baseline {

const char*
toString(MscclAlgo a)
{
    switch (a) {
      case MscclAlgo::Auto:
        return "auto";
      case MscclAlgo::AllPairs1P:
        return "1PA";
      case MscclAlgo::AllPairs2P:
        return "2PA";
      case MscclAlgo::Hier2PLL:
        return "2PH-LL";
      case MscclAlgo::Hier2PHB:
        return "2PH-HB";
      case MscclAlgo::Ring:
        return "ring";
    }
    return "?";
}

namespace {

/** Stage tags keep concurrent pipeline stages on distinct channels. */
enum StageTag
{
    kTagLocalRs = 0,
    kTagCross = 1,
    kTagCrossAg = 2,
    kTagLocalAg = 3,
};

} // namespace

MscclComm::MscclComm(gpu::Machine& machine, std::size_t maxBytes)
    : machine_(&machine), maxBytes_(maxBytes)
{
    n_ = machine.numGpus();
    gpn_ = machine.config().gpusPerNode;
    nodes_ = machine.numNodes();
    if (n_ < 2) {
        throw Error(ErrorCode::InvalidUsage, "need at least two GPUs");
    }
    for (int r = 0; r < n_; ++r) {
        data_.push_back(machine.gpu(r).alloc(maxBytes));
        scratch_.push_back(machine.gpu(r).alloc(2 * maxBytes + 65536));
    }
    mesh_ = std::make_unique<TwoSidedMesh>(machine);
}

sim::Delay
MscclComm::instr(gpu::BlockCtx& ctx) const
{
    return sim::Delay(ctx.scheduler(),
                      machine_->config().mscclInstrOverhead,
                      "baseline.msccl");
}

sim::Task<>
MscclComm::slowBarrier(gpu::BlockCtx& ctx,
                       std::shared_ptr<sim::SimBarrier> bar) const
{
    const fabric::EnvConfig& cfg = machine_->config();
    co_await sim::Delay(ctx.scheduler(),
                        cfg.threadFence + cfg.atomicAddLatency,
                        "baseline.msccl");
    co_await bar->arriveAndWait();
    co_await sim::Delay(ctx.scheduler(),
                        cfg.atomicAddLatency + cfg.semaphorePoll,
                        "baseline.msccl");
}

NcclProto
MscclComm::protoFor(std::size_t bytes) const
{
    if (bytes <= (64 << 10)) {
        return NcclProto::LL;
    }
    if (bytes <= (4 << 20) && machine_->config().ll128Supported) {
        return NcclProto::LL128;
    }
    return NcclProto::Simple;
}

MscclAlgo
MscclComm::chooseAllReduce(std::size_t bytes) const
{
    if (nodes_ > 1) {
        return bytes <= (1 << 20) ? MscclAlgo::Hier2PLL
                                  : MscclAlgo::Hier2PHB;
    }
    return bytes <= (32 << 10) ? MscclAlgo::AllPairs1P
                               : MscclAlgo::AllPairs2P;
}

MscclAlgo
MscclComm::chooseAllGather(std::size_t) const
{
    return nodes_ > 1 ? MscclAlgo::Hier2PHB : MscclAlgo::AllPairs2P;
}

sim::Time
MscclComm::allReduce(std::size_t bytes, gpu::DataType type,
                     gpu::ReduceOp op, MscclAlgo algo)
{
    if (bytes == 0 || bytes > maxBytes_) {
        throw Error(ErrorCode::InvalidUsage, "allReduce size out of range");
    }
    if (algo == MscclAlgo::Auto) {
        algo = chooseAllReduce(bytes);
    }
    switch (algo) {
      case MscclAlgo::AllPairs1P:
        return allPairs1P(bytes, type, op);
      case MscclAlgo::AllPairs2P:
        return allPairs2P(bytes, type, op);
      case MscclAlgo::Hier2PLL:
        return hier2P(bytes, type, op, /*ll=*/true);
      case MscclAlgo::Hier2PHB:
        return hier2P(bytes, type, op, /*ll=*/false);
      default:
        throw Error(ErrorCode::InvalidUsage,
                    "algorithm not applicable to AllReduce");
    }
}

sim::Time
MscclComm::allPairs1P(std::size_t bytes, gpu::DataType type,
                      gpu::ReduceOp op)
{
    if (nodes_ > 1) {
        throw Error(ErrorCode::InvalidUsage, "1PA is single-node");
    }
    NcclProto proto = protoFor(bytes);
    auto barrier =
        std::make_shared<sim::SimBarrier>(machine_->scheduler(), n_);
    auto fn = [&, bytes, proto, barrier](gpu::BlockCtx& ctx,
                                         int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n_;
        TwoSidedChannel& out = mesh_->channel(rank, peer, proto);
        TwoSidedChannel& in = mesh_->channel(peer, rank, proto);
        const std::size_t w = out.windowBytes();
        for (std::size_t off = 0; off < bytes; off += w) {
            std::size_t len = std::min(w, bytes - off);
            co_await instr(ctx);
            co_await out.send(ctx, data_[rank].view(off, len), len);
            co_await instr(ctx);
            co_await in.recv(ctx, data_[rank].view(off, len), len,
                             /*reduceInto=*/true, type, op);
        }
        co_await ctx.gridBarrier();
        // Self-synchronous primitives cannot rotate buffers: a full
        // cross-GPU barrier guards the next invocation (Section 2.2.2).
        if (ctx.blockIdx() == 0) {
            co_await slowBarrier(ctx, barrier);
        }
        co_await ctx.gridBarrier();
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = n_ - 1;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
MscclComm::allPairs2P(std::size_t bytes, gpu::DataType type,
                      gpu::ReduceOp op)
{
    if (nodes_ > 1) {
        throw Error(ErrorCode::InvalidUsage, "2PA is single-node");
    }
    if (bytes % (static_cast<std::size_t>(n_) * 16) != 0) {
        throw Error(ErrorCode::InvalidUsage, "2PA size must shard evenly");
    }
    const std::size_t shard = bytes / n_;
    NcclProto proto = protoFor(bytes);
    auto barrier =
        std::make_shared<sim::SimBarrier>(machine_->scheduler(), n_);
    auto fn = [&, shard, proto, barrier](gpu::BlockCtx& ctx,
                                         int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n_;
        TwoSidedChannel& out = mesh_->channel(rank, peer, proto);
        TwoSidedChannel& in = mesh_->channel(peer, rank, proto);
        const std::size_t w = out.windowBytes();
        // Phase 1: all-pairs ReduceScatter, window-interleaved so the
        // staged slots recycle (NCCL kernels chunk the same way).
        for (std::size_t off = 0; off < shard; off += w) {
            std::size_t len = std::min(w, shard - off);
            co_await instr(ctx);
            co_await out.send(
                ctx, data_[rank].view(peer * shard + off, len), len);
            co_await instr(ctx);
            co_await in.recv(ctx,
                             data_[rank].view(rank * shard + off, len),
                             len, true, type, op);
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            co_await slowBarrier(ctx, barrier);
        }
        co_await ctx.gridBarrier();
        // Phase 2: all-pairs AllGather.
        for (std::size_t off = 0; off < shard; off += w) {
            std::size_t len = std::min(w, shard - off);
            co_await instr(ctx);
            co_await out.send(
                ctx, data_[rank].view(rank * shard + off, len), len);
            co_await instr(ctx);
            co_await in.recv(ctx,
                             data_[rank].view(peer * shard + off, len),
                             len, false, type, op);
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            co_await slowBarrier(ctx, barrier);
        }
        co_await ctx.gridBarrier();
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = n_ - 1;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
MscclComm::hier2P(std::size_t bytes, gpu::DataType type, gpu::ReduceOp op,
                  bool ll)
{
    if (nodes_ < 2) {
        throw Error(ErrorCode::InvalidUsage, "2PH is multi-node");
    }
    const int g = gpn_;
    const int m = nodes_;
    const std::size_t chunk = ll ? bytes / g : bytes / n_;
    if (chunk == 0 || bytes % static_cast<std::size_t>(ll ? g : n_) != 0 ||
        chunk % 16 != 0) {
        throw Error(ErrorCode::InvalidUsage, "2PH size must chunk evenly");
    }
    int kDepth = ll ? 1 : 4;
    while (kDepth > 1 &&
           (chunk % static_cast<std::size_t>(kDepth) != 0 ||
            chunk / static_cast<std::size_t>(kDepth) < 4096)) {
        kDepth >>= 1;
    }
    const std::size_t sub = chunk / kDepth;
    NcclProto localProto = ll ? NcclProto::LL : protoFor(bytes);
    NcclProto netProto = ll ? NcclProto::LL : NcclProto::Simple;

    std::vector<std::unique_ptr<sim::SimSemaphore>> aDone;
    std::vector<std::unique_ptr<sim::SimSemaphore>> bDone;
    for (int r = 0; r < n_; ++r) {
        aDone.push_back(
            std::make_unique<sim::SimSemaphore>(machine_->scheduler()));
        bDone.push_back(
            std::make_unique<sim::SimSemaphore>(machine_->scheduler()));
    }
    auto barrier =
        std::make_shared<sim::SimBarrier>(machine_->scheduler(), n_);

    // Chunk offset helpers (LL: chunk per local index; HB: chunk per
    // rank).
    auto chunkOff = [=](int nodeIdx, int localIdx) {
        return ll ? static_cast<std::size_t>(localIdx) * chunk
                  : (static_cast<std::size_t>(nodeIdx) * g + localIdx) *
                        chunk;
    };

    auto fn = [&, chunk, sub, kDepth, localProto, netProto, ll,
               barrier](gpu::BlockCtx& ctx, int rank) -> sim::Task<> {
        const int node = rank / g;
        const int local = rank % g;
        const int chunksPerCol = ll ? 1 : m;
        const std::size_t w = machine_->config().ncclSlotBytes;

        if (ctx.blockIdx() == 0) {
            // Stage A: node-local ReduceScatter, window-interleaved.
            for (int k = 0; k < kDepth; ++k) {
                for (std::size_t off = 0; off < sub; off += w) {
                    std::size_t len = std::min(w, sub - off);
                    for (int dl = 1; dl < g; ++dl) {
                        int pl = (local + dl) % g;
                        int q = node * g + pl;
                        for (int cc = 0; cc < chunksPerCol; ++cc) {
                            std::size_t src =
                                chunkOff(cc, pl) +
                                static_cast<std::size_t>(k) * sub + off;
                            co_await instr(ctx);
                            co_await mesh_
                                ->channel(rank, q, localProto, kTagLocalRs)
                                .send(ctx, data_[rank].view(src, len),
                                      len);
                        }
                    }
                    for (int dl = 1; dl < g; ++dl) {
                        int q = node * g + (local + dl) % g;
                        for (int cc = 0; cc < chunksPerCol; ++cc) {
                            std::size_t dst =
                                chunkOff(cc, local) +
                                static_cast<std::size_t>(k) * sub + off;
                            co_await instr(ctx);
                            co_await mesh_
                                ->channel(q, rank, localProto, kTagLocalRs)
                                .recv(ctx, data_[rank].view(dst, len),
                                      len, true, type, op);
                        }
                    }
                }
                aDone[rank]->add(1);
            }
        } else if (ctx.blockIdx() == 1) {
            // Stage B: cross-node ReduceScatter (+ AllGather for HB).
            for (int k = 0; k < kDepth; ++k) {
                co_await aDone[rank]->waitUntil(k + 1);
                for (std::size_t off = 0; off < sub; off += w) {
                    std::size_t len = std::min(w, sub - off);
                    for (int dn = 1; dn < m; ++dn) {
                        int pn = (node + dn) % m;
                        int q = pn * g + local;
                        std::size_t src =
                            (ll ? chunkOff(0, local) : chunkOff(pn, local)) +
                            static_cast<std::size_t>(k) * sub + off;
                        co_await instr(ctx);
                        co_await mesh_->channel(rank, q, netProto, kTagCross)
                            .send(ctx, data_[rank].view(src, len), len);
                    }
                    std::size_t mine =
                        (ll ? chunkOff(0, local) : chunkOff(node, local)) +
                        static_cast<std::size_t>(k) * sub + off;
                    for (int dn = 1; dn < m; ++dn) {
                        int q = ((node + dn) % m) * g + local;
                        co_await instr(ctx);
                        co_await mesh_->channel(q, rank, netProto, kTagCross)
                            .recv(ctx, data_[rank].view(mine, len), len,
                                  true, type, op);
                    }
                    if (!ll) {
                        for (int dn = 1; dn < m; ++dn) {
                            int q = ((node + dn) % m) * g + local;
                            co_await instr(ctx);
                            co_await mesh_
                                ->channel(rank, q, netProto, kTagCrossAg)
                                .send(ctx, data_[rank].view(mine, len),
                                      len);
                        }
                        for (int dn = 1; dn < m; ++dn) {
                            int pn = (node + dn) % m;
                            int q = pn * g + local;
                            std::size_t dst =
                                chunkOff(pn, local) +
                                static_cast<std::size_t>(k) * sub + off;
                            co_await instr(ctx);
                            co_await mesh_
                                ->channel(q, rank, netProto, kTagCrossAg)
                                .recv(ctx, data_[rank].view(dst, len),
                                      len, false, type, op);
                        }
                    }
                }
                bDone[rank]->add(1);
            }
        } else if (ctx.blockIdx() == 2) {
            // Stage C: node-local AllGather of finished chunks.
            for (int k = 0; k < kDepth; ++k) {
                co_await bDone[rank]->waitUntil(k + 1);
                for (std::size_t off = 0; off < sub; off += w) {
                    std::size_t len = std::min(w, sub - off);
                    for (int dl = 1; dl < g; ++dl) {
                        int q = node * g + (local + dl) % g;
                        for (int cc = 0; cc < chunksPerCol; ++cc) {
                            std::size_t src =
                                chunkOff(cc, local) +
                                static_cast<std::size_t>(k) * sub + off;
                            co_await instr(ctx);
                            co_await mesh_
                                ->channel(rank, q, localProto, kTagLocalAg)
                                .send(ctx, data_[rank].view(src, len),
                                      len);
                        }
                    }
                    for (int dl = 1; dl < g; ++dl) {
                        int pl = (local + dl) % g;
                        int q = node * g + pl;
                        for (int cc = 0; cc < chunksPerCol; ++cc) {
                            std::size_t dst =
                                chunkOff(cc, pl) +
                                static_cast<std::size_t>(k) * sub + off;
                            co_await instr(ctx);
                            co_await mesh_
                                ->channel(q, rank, localProto, kTagLocalAg)
                                .recv(ctx, data_[rank].view(dst, len),
                                      len, false, type, op);
                        }
                    }
                }
            }
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            co_await slowBarrier(ctx, barrier);
        }
        co_await ctx.gridBarrier();
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = 3;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
MscclComm::allGather(std::size_t shard, MscclAlgo algo)
{
    const std::size_t total = shard * static_cast<std::size_t>(n_);
    if (shard == 0 || total > maxBytes_) {
        throw Error(ErrorCode::InvalidUsage, "allGather size out of range");
    }
    if (algo == MscclAlgo::Auto) {
        algo = chooseAllGather(shard);
    }
    if (nodes_ > 1) {
        return hierAG(shard);
    }
    return allPairsAG(shard);
}

sim::Time
MscclComm::allPairsAG(std::size_t shard)
{
    NcclProto proto = protoFor(shard * n_);
    auto barrier =
        std::make_shared<sim::SimBarrier>(machine_->scheduler(), n_);
    auto fn = [&, shard, proto, barrier](gpu::BlockCtx& ctx,
                                         int rank) -> sim::Task<> {
        const int peer = (rank + 1 + ctx.blockIdx()) % n_;
        TwoSidedChannel& out = mesh_->channel(rank, peer, proto);
        TwoSidedChannel& in = mesh_->channel(peer, rank, proto);
        const std::size_t w = out.windowBytes();
        for (std::size_t off = 0; off < shard; off += w) {
            std::size_t len = std::min(w, shard - off);
            co_await instr(ctx);
            co_await out.send(
                ctx, data_[rank].view(rank * shard + off, len), len);
            co_await instr(ctx);
            co_await in.recv(ctx,
                             data_[rank].view(peer * shard + off, len),
                             len, false, gpu::DataType::F32,
                             gpu::ReduceOp::Sum);
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            co_await slowBarrier(ctx, barrier);
        }
        co_await ctx.gridBarrier();
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = n_ - 1;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

sim::Time
MscclComm::hierAG(std::size_t shard)
{
    const int g = gpn_;
    const int m = nodes_;
    NcclProto localProto = protoFor(shard * g);
    auto barrier =
        std::make_shared<sim::SimBarrier>(machine_->scheduler(), n_);
    auto fn = [&, shard, localProto, barrier](gpu::BlockCtx& ctx,
                                              int rank) -> sim::Task<> {
        const int node = rank / g;
        const int local = rank % g;
        if (ctx.blockIdx() == 0) {
            // Phase 1: cross-node exchange of my shard.
            std::size_t w = machine_->config().ncclSlotBytes;
            for (std::size_t off = 0; off < shard; off += w) {
                std::size_t len = std::min(w, shard - off);
                for (int dn = 1; dn < m; ++dn) {
                    int q = ((node + dn) % m) * g + local;
                    co_await instr(ctx);
                    co_await mesh_
                        ->channel(rank, q, NcclProto::Simple, kTagCross)
                        .send(ctx,
                              data_[rank].view(rank * shard + off, len),
                              len);
                }
                for (int dn = 1; dn < m; ++dn) {
                    int q = ((node + dn) % m) * g + local;
                    co_await instr(ctx);
                    co_await mesh_
                        ->channel(q, rank, NcclProto::Simple, kTagCross)
                        .recv(ctx,
                              data_[rank].view(q * shard + off, len), len,
                              false, gpu::DataType::F32,
                              gpu::ReduceOp::Sum);
                }
            }
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            co_await slowBarrier(ctx, barrier);
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            // Phase 2: local spread of my column.
            std::size_t w = machine_->config().ncclSlotBytes;
            for (std::size_t off = 0; off < shard; off += w) {
                std::size_t len = std::min(w, shard - off);
                for (int dl = 1; dl < g; ++dl) {
                    int q = node * g + (local + dl) % g;
                    for (int nn = 0; nn < m; ++nn) {
                        int src = nn * g + local;
                        co_await instr(ctx);
                        co_await mesh_
                            ->channel(rank, q, localProto, kTagLocalAg)
                            .send(ctx,
                                  data_[rank].view(src * shard + off,
                                                   len),
                                  len);
                    }
                }
                for (int dl = 1; dl < g; ++dl) {
                    int pl = (local + dl) % g;
                    int q = node * g + pl;
                    for (int nn = 0; nn < m; ++nn) {
                        int src = nn * g + pl;
                        co_await instr(ctx);
                        co_await mesh_
                            ->channel(q, rank, localProto, kTagLocalAg)
                            .recv(ctx,
                                  data_[rank].view(src * shard + off,
                                                   len),
                                  len, false, gpu::DataType::F32,
                                  gpu::ReduceOp::Sum);
                    }
                }
            }
        }
        co_await ctx.gridBarrier();
        if (ctx.blockIdx() == 0) {
            co_await slowBarrier(ctx, barrier);
        }
        co_await ctx.gridBarrier();
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = 2;
    cfg.threadsPerBlock = 512;
    return gpu::runOnAllRanks(*machine_, cfg, fn);
}

} // namespace mscclpp::baseline
