#ifndef MSCCLPP_BASELINE_NCCL_HPP
#define MSCCLPP_BASELINE_NCCL_HPP

#include "baseline/two_sided.hpp"
#include "gpu/types.hpp"

#include <memory>
#include <utility>
#include <vector>

namespace mscclpp::baseline {

/** NCCL collective algorithms modelled by the baseline. */
enum class NcclAlgo
{
    Auto,
    Ring,
    Tree,
    Nvls,
};

const char* toString(NcclAlgo a);

/**
 * Model of NCCL 2.26 (and, with MI300x fabric parameters, RCCL 2.20):
 * ring and tree collectives over the two-sided staged primitives, a
 * Simple/LL/LL128 protocol stack, NVLS on multimem hardware, and the
 * size-based algorithm/protocol tuner. All numbers are fine-tuned per
 * environment the way the paper tunes the baselines (channel counts,
 * chunk sizes, algorithm selection).
 */
class NcclComm
{
  public:
    NcclComm(gpu::Machine& machine, std::size_t maxBytes);

    gpu::Machine& machine() const { return *machine_; }
    int size() const { return n_; }
    std::size_t maxBytes() const { return maxBytes_; }

    /** Rank @p r's registered in/out buffer. */
    gpu::DeviceBuffer dataBuffer(int rank) const { return data_.at(rank); }

    /** In-place AllReduce over @p bytes. @return elapsed time. */
    sim::Time allReduce(std::size_t bytes, gpu::DataType type,
                        gpu::ReduceOp op, NcclAlgo algo = NcclAlgo::Auto);

    /** In-place AllGather; rank r's shard at offset r*shard. */
    sim::Time allGather(std::size_t shard);

    /** ReduceScatter via the ring (result in rank's shard slot). */
    sim::Time reduceScatter(std::size_t bytes, gpu::DataType type,
                            gpu::ReduceOp op);

    /** Broadcast @p bytes from @p root (ring pipeline). */
    sim::Time broadcast(std::size_t bytes, int root);

    /** (algo, proto) the tuner picks for an AllReduce of @p bytes. */
    std::pair<NcclAlgo, NcclProto> tuneAllReduce(std::size_t bytes) const;

    /** Proto the tuner picks for bandwidth collectives of @p bytes. */
    NcclProto tuneProto(std::size_t bytes) const;

    /** Channel (thread-block/ring) count for @p bytes. */
    int tuneChannels(std::size_t bytes) const;

    /** Ring successor of @p rank on ring @p channel. */
    int ringNext(int rank, int channel) const;

    /** Ring predecessor of @p rank on ring @p channel. */
    int ringPrev(int rank, int channel) const;

    /** Position of @p rank in channel @p c's ring order. */
    int ringPos(int rank, int c) const;

    /** Rank sitting at ring position @p pos on channel @p c. */
    int ringRank(int pos, int c) const;

  private:
    /** Protocol usable on the (src, dst) edge (LL128 is NVLink-only). */
    NcclProto edgeProto(int src, int dst, NcclProto wanted) const;

    sim::Time ringAllReduce(std::size_t bytes, gpu::DataType type,
                            gpu::ReduceOp op, NcclProto proto);
    sim::Time treeAllReduce(std::size_t bytes, gpu::DataType type,
                            gpu::ReduceOp op, NcclProto proto);
    sim::Time nvlsAllReduce(std::size_t bytes, gpu::DataType type,
                            gpu::ReduceOp op);

    gpu::Machine* machine_;
    int n_;
    int gpn_;
    int nodes_;
    bool meshRings_; ///< RCCL on Infinity Fabric: stride rings
    std::size_t maxBytes_;
    std::vector<gpu::DeviceBuffer> data_;
    std::unique_ptr<TwoSidedMesh> mesh_;
};

} // namespace mscclpp::baseline

#endif // MSCCLPP_BASELINE_NCCL_HPP
