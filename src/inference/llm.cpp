#include "inference/llm.hpp"

#include "core/errors.hpp"

#include <algorithm>

namespace mscclpp::inference {

std::uint64_t
TransformerConfig::layerParams() const
{
    const std::uint64_t h = hidden;
    const std::uint64_t hKv = h * kvHeads / heads;
    // q and o are h*h; k and v are h*hKv (GQA); gated MLP is 3 mats.
    std::uint64_t attn = 2 * h * h + 2 * h * hKv;
    std::uint64_t mlp = 3 * h * static_cast<std::uint64_t>(ffn);
    return attn + mlp;
}

std::uint64_t
TransformerConfig::totalParams() const
{
    return static_cast<std::uint64_t>(layers) * layerParams() +
           2ull * vocab * hidden; // embedding + lm head
}

std::uint64_t
TransformerConfig::kvBytesPerToken(int tp) const
{
    const std::uint64_t hKv =
        static_cast<std::uint64_t>(hidden) * kvHeads / heads;
    return 2ull * layers * hKv * bytesPerParam / tp;
}

TransformerConfig
makeLlama2_70b()
{
    return TransformerConfig{};
}

const char*
toString(CommBackend b)
{
    switch (b) {
      case CommBackend::Mscclpp:
        return "MSCCL++";
      case CommBackend::Nccl:
        return "NCCL";
      case CommBackend::Msccl:
        return "MSCCL";
      case CommBackend::None:
        return "none";
    }
    return "?";
}

InferenceSim::InferenceSim(gpu::Machine& machine, InferenceConfig config)
    : machine_(&machine), config_(std::move(config))
{
    if (config_.tensorParallel != machine.numGpus()) {
        throw Error(ErrorCode::InvalidUsage,
                    "tensor parallelism must equal the GPU count");
    }
    CollectiveComm::Options opt;
    opt.maxBytes = config_.maxCollectiveBytes;
    ours_ = std::make_unique<CollectiveComm>(machine, opt);
    nccl_ = std::make_unique<baseline::NcclComm>(
        machine, config_.maxCollectiveBytes);
    msccl_ = std::make_unique<baseline::MscclComm>(
        machine, config_.maxCollectiveBytes);
}

sim::Time
InferenceSim::allReduceTime(std::size_t bytes, CommBackend backend)
{
    if (backend == CommBackend::None || bytes == 0) {
        return 0;
    }
    // The MSCCL++ backend re-issues the collective every step, the
    // way a serving loop does: repeat shapes hit the communicator's
    // launch-plan cache (tuner.plan_cache.* counters) and the result
    // is deterministic per size, so reported latencies are unchanged.
    if (backend == CommBackend::Mscclpp) {
        return ours_->allReduce(bytes, gpu::DataType::F16,
                                gpu::ReduceOp::Sum);
    }
    // Baselines are deterministic per (backend, size): measure once.
    auto key = std::make_pair(static_cast<int>(backend), bytes);
    auto it = arCache_.find(key);
    if (it != arCache_.end()) {
        return it->second;
    }
    sim::Time t = 0;
    switch (backend) {
      case CommBackend::Mscclpp:
        break; // handled above
      case CommBackend::Nccl:
        t = nccl_->allReduce(bytes, gpu::DataType::F16,
                             gpu::ReduceOp::Sum);
        break;
      case CommBackend::Msccl:
        t = msccl_->allReduce(bytes, gpu::DataType::F16,
                              gpu::ReduceOp::Sum);
        break;
      case CommBackend::None:
        break;
    }
    arCache_[key] = t;
    return t;
}

sim::Time
InferenceSim::layerComputeTime(std::uint64_t tokens,
                               std::uint64_t kvTokensRead) const
{
    const TransformerConfig& m = config_.model;
    const fabric::EnvConfig& env = machine_->config();
    const int tp = config_.tensorParallel;
    const std::uint64_t h = m.hidden;
    const std::uint64_t hKv = h * m.kvHeads / m.heads;

    // Memory traffic per GPU: the layer's weight shard once, plus the
    // KV cache slices attention reads, plus activations.
    double weightBytes =
        double(m.layerParams()) * m.bytesPerParam / tp;
    double kvBytes = 2.0 * double(kvTokensRead) * hKv *
                     m.bytesPerParam / tp;
    double actBytes = 8.0 * double(tokens) * h * m.bytesPerParam / tp;
    double memBytes = weightBytes + kvBytes + actBytes;

    // FLOPs per GPU: GEMMs over the weight shard plus attention
    // (each token/context-entry pair costs ~4h flops: QK^T and AV).
    double gemmFlops = 2.0 * double(m.layerParams()) * tokens / tp;
    double attnFlops = 4.0 * double(kvTokensRead) * h / tp;
    double flops = gemmFlops + attnFlops;

    double memSec =
        memBytes / (env.hbmBwGBps * 1e9 * config_.computeEfficiency);
    double flopSec = flops / (env.fp16Tflops * 1e12 *
                              config_.computeEfficiency);
    double sec = std::max(memSec, flopSec);
    return static_cast<sim::Time>(sec * 1e12) + config_.perLayerOverhead;
}

void
InferenceSim::annotateRequestContext()
{
    // When a serving layer parked request ids in the tracer, pin them
    // to the inference step too (a zero-width marker on the "steps"
    // track): the trace then carries the request context at every
    // layer between the serving span above and the collectives below.
    obs::Tracer& tr = machine_->obs().tracer();
    if (!tr.enabled() || tr.requestContext().empty()) {
        return;
    }
    const sim::Time now = machine_->scheduler().now();
    tr.span(obs::Category::Step, "req.ctx", obs::kHostPid, "steps", now,
            now, 0, -1, tr.requestContext());
}

InferenceSim::Breakdown
InferenceSim::decodeStep(int batch, int seqlen, CommBackend backend)
{
    if (batch < 1 || seqlen < 0) {
        throw Error(ErrorCode::InvalidUsage, "bad batch configuration");
    }
    return decodeStepMixed(std::vector<int>(batch, seqlen), backend);
}

InferenceSim::Breakdown
InferenceSim::decodeStepMixed(const std::vector<int>& contextLens,
                              CommBackend backend)
{
    const int batch = static_cast<int>(contextLens.size());
    if (batch < 1) {
        throw Error(ErrorCode::InvalidUsage, "bad batch configuration");
    }
    std::uint64_t kvRead = 0;
    for (int len : contextLens) {
        if (len < 0) {
            throw Error(ErrorCode::InvalidUsage,
                        "bad batch configuration");
        }
        kvRead += static_cast<std::uint64_t>(len);
    }
    // Step-profiler window over the whole decode step: an explicit
    // outer window (a serving loop's own beginStep) wins; otherwise
    // this opens one per step, so flight recording works out of the
    // box on any decode loop.
    obs::StepWindow& win = machine_->obs().window();
    const bool opened = win.beginStepIfIdle(
        std::string("decode[") + toString(backend) + "]",
        machine_->scheduler().now());
    annotateRequestContext();
    const TransformerConfig& m = config_.model;
    Breakdown b;
    // One new token per sequence; attention reads each sequence's own
    // context.
    std::uint64_t tokens = batch;
    sim::Time perLayer = layerComputeTime(tokens, kvRead);

    std::size_t arBytes = std::size_t(batch) * m.hidden * 2; // fp16
    arBytes = std::max<std::size_t>(arBytes & ~std::size_t(127), 128);
    sim::Time ar = allReduceTime(arBytes, backend);

    b.compute = perLayer * m.layers;
    b.allReduceCalls = 2 * m.layers; // attention out + MLP out
    b.allReduceBytes = arBytes;
    b.comm = ar * b.allReduceCalls;
    if (opened) {
        // Reconcile: the roofline compute never advanced virtual
        // time, and one traced AllReduce stands in for all
        // allReduceCalls issues — so buckets must sum to b.total().
        win.endStep(machine_->scheduler().now(), b.total(), b.compute);
    }
    return b;
}

InferenceSim::Breakdown
InferenceSim::prefill(int batch, int seqlen, CommBackend backend)
{
    if (batch < 1 || seqlen < 1) {
        throw Error(ErrorCode::InvalidUsage, "bad batch configuration");
    }
    obs::StepWindow& win = machine_->obs().window();
    const bool opened = win.beginStepIfIdle(
        std::string("prefill[") + toString(backend) + "]",
        machine_->scheduler().now());
    annotateRequestContext();
    const TransformerConfig& m = config_.model;
    Breakdown b;
    std::uint64_t tokens = std::uint64_t(batch) * seqlen;
    // Causal attention reads on average half the context per token.
    std::uint64_t kvRead = tokens * seqlen / 2;
    sim::Time perLayer = layerComputeTime(tokens, kvRead);

    std::size_t arBytes = tokens * m.hidden * 2;
    // vLLM chunks very large collectives.
    int chunks = 1;
    while (arBytes / chunks > config_.maxCollectiveBytes) {
        ++chunks;
    }
    std::size_t chunkBytes = ((arBytes / chunks) + 127) & ~std::size_t(127);
    sim::Time ar = allReduceTime(chunkBytes, backend) * chunks;

    b.compute = perLayer * m.layers;
    b.allReduceCalls = 2 * m.layers * chunks;
    b.allReduceBytes = chunkBytes;
    b.comm = ar * 2 * m.layers;
    if (opened) {
        win.endStep(machine_->scheduler().now(), b.total(), b.compute);
    }
    return b;
}

} // namespace mscclpp::inference
