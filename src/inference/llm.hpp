#ifndef MSCCLPP_INFERENCE_LLM_HPP
#define MSCCLPP_INFERENCE_LLM_HPP

#include "baseline/msccl.hpp"
#include "baseline/nccl.hpp"
#include "collective/api.hpp"
#include "gpu/machine.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mscclpp::inference {

/** Decoder-only transformer shape (defaults are Llama2-70b). */
struct TransformerConfig
{
    std::string name = "Llama2-70b";
    int layers = 80;
    int hidden = 8192;
    int heads = 64;
    int kvHeads = 8; ///< grouped-query attention
    int ffn = 28672;
    int vocab = 32000;
    std::size_t bytesPerParam = 2; ///< fp16 weights

    /** Parameters per layer (attention + gated MLP). */
    std::uint64_t layerParams() const;

    /** Total parameters incl. embeddings (~70e9 for the default). */
    std::uint64_t totalParams() const;

    /** KV-cache bytes one context token costs per GPU under @p tp -way
     *  tensor parallelism (K + V, every layer, GQA heads). */
    std::uint64_t kvBytesPerToken(int tp) const;
};

TransformerConfig makeLlama2_70b();

/** Which stack serves the tensor-parallel AllReduce. */
enum class CommBackend
{
    Mscclpp,
    Nccl,
    Msccl,
    None, ///< communication-free (isolates compute in tests)
};

const char* toString(CommBackend b);

/** Tunables of the serving-system model (vLLM-like). */
struct InferenceConfig
{
    TransformerConfig model = makeLlama2_70b();
    int tensorParallel = 8;
    /// Fraction of roofline the serving stack actually achieves
    /// (vLLM v0.3.3-era kernels, the paper's baseline).
    double computeEfficiency = 0.5;
    /// Non-GEMM per-layer time (kernel launches, norms, rotary, ...).
    sim::Time perLayerOverhead = sim::us(25);
    /// Largest AllReduce issued at once (prefills are chunked).
    std::size_t maxCollectiveBytes = 64 << 20;
};

/**
 * End-to-end distributed inference model (Section 5.2): compute from
 * a per-layer roofline (weight/KV traffic vs FLOPs), communication
 * from the *actual simulated collectives* — two tensor-parallel
 * AllReduces per layer, served by the selected backend.
 */
class InferenceSim
{
  public:
    InferenceSim(gpu::Machine& machine, InferenceConfig config);

    const InferenceConfig& config() const { return config_; }

    /** Per-step timing split, for reporting. */
    struct Breakdown
    {
        sim::Time compute = 0;
        sim::Time comm = 0;
        std::size_t allReduceBytes = 0;
        int allReduceCalls = 0;

        sim::Time total() const { return compute + comm; }
    };

    /**
     * One decode step: every sequence in the batch produces one
     * token against a context of @p seqlen tokens.
     */
    Breakdown decodeStep(int batch, int seqlen, CommBackend backend);

    /**
     * One decode step over a continuous batch: sequence i produces
     * one token against its own context of @p contextLens[i] tokens.
     * decodeStep(b, s) == decodeStepMixed({s, s, ... b times}, s).
     */
    Breakdown decodeStepMixed(const std::vector<int>& contextLens,
                              CommBackend backend);

    /** Prefill of @p batch sequences of @p seqlen prompt tokens. */
    Breakdown prefill(int batch, int seqlen, CommBackend backend);

    /** Simulated AllReduce latency of @p bytes on @p backend. */
    sim::Time allReduceTime(std::size_t bytes, CommBackend backend);

    /** The MSCCL++ communicator (e.g. to inspect its plan cache). */
    const CollectiveComm& comm() const { return *ours_; }

  private:
    sim::Time layerComputeTime(std::uint64_t tokens,
                               std::uint64_t kvTokensRead) const;
    void annotateRequestContext();

    gpu::Machine* machine_;
    InferenceConfig config_;
    std::unique_ptr<CollectiveComm> ours_;
    std::unique_ptr<baseline::NcclComm> nccl_;
    std::unique_ptr<baseline::MscclComm> msccl_;
    std::map<std::pair<int, std::size_t>, sim::Time> arCache_;
};

} // namespace mscclpp::inference

#endif // MSCCLPP_INFERENCE_LLM_HPP
