#include "obs/timeseries.hpp"

#include "core/errors.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace mscclpp::obs {

const char*
toString(SeriesKind k)
{
    switch (k) {
      case SeriesKind::CounterDelta:
        return "counter_delta";
      case SeriesKind::Gauge:
        return "gauge";
      case SeriesKind::Utilization:
        return "utilization";
    }
    return "?";
}

TimeSeries::TimeSeries(sim::Time intervalWidth)
    : width_(std::max<sim::Time>(intervalWidth, 1))
{
}

void
TimeSeries::setIntervalWidth(sim::Time width)
{
    width_ = std::max<sim::Time>(width, 1);
}

TimeSeries::Series&
TimeSeries::open(const std::string& name, SeriesKind kind)
{
    auto it = series_.find(name);
    if (it == series_.end()) {
        it = series_.emplace(name, Series{kind, {}}).first;
    }
    return it->second;
}

void
TimeSeries::noteInterval(std::uint64_t idx)
{
    if (!anyIdx_) {
        minIdx_ = maxIdx_ = idx;
        anyIdx_ = true;
    } else {
        minIdx_ = std::min(minIdx_, idx);
        maxIdx_ = std::max(maxIdx_, idx);
    }
    // Bound the *span*, not the point count: a sparse series must not
    // defeat the cap, because the Chrome counter track and any
    // cross-series correlation walk the full [min, max] range.
    while (maxIdx_ - minIdx_ + 1 > kMaxIntervals) {
        coarsen();
    }
}

void
TimeSeries::coarsen()
{
    width_ *= 2;
    ++coarsenings_;
    for (auto& [name, s] : series_) {
        (void)name;
        std::map<std::uint64_t, double> coarse;
        if (s.kind == SeriesKind::Gauge) {
            // Ascending iteration makes the later interval's sample
            // overwrite the earlier one: "last level seen" survives
            // coarsening the same way it wins within an interval.
            for (const auto& [idx, v] : s.points) {
                coarse[idx / 2] = v;
            }
        } else {
            for (const auto& [idx, v] : s.points) {
                coarse[idx / 2] += v;
            }
        }
        s.points = std::move(coarse);
    }
    minIdx_ /= 2;
    maxIdx_ /= 2;
}

void
TimeSeries::record(const std::string& name, sim::Time at, double value)
{
    if (!enabled()) {
        return;
    }
    std::uint64_t idx = static_cast<std::uint64_t>(at) / width_;
    open(name, SeriesKind::Gauge).points[idx] = value;
    ++samples_;
    noteInterval(idx);
}

void
TimeSeries::accumulate(const std::string& name, sim::Time at,
                       double delta)
{
    if (!enabled()) {
        return;
    }
    std::uint64_t idx = static_cast<std::uint64_t>(at) / width_;
    open(name, SeriesKind::CounterDelta).points[idx] += delta;
    ++samples_;
    noteInterval(idx);
}

void
TimeSeries::chargeRange(const std::string& name, sim::Time begin,
                        sim::Time end, double weight)
{
    if (!enabled() || end <= begin) {
        return;
    }
    Series& s = open(name, SeriesKind::Utilization);
    std::uint64_t first = static_cast<std::uint64_t>(begin) / width_;
    std::uint64_t last = static_cast<std::uint64_t>(end - 1) / width_;
    for (std::uint64_t i = first; i <= last; ++i) {
        sim::Time lo = std::max<sim::Time>(begin, i * width_);
        sim::Time hi = std::min<sim::Time>(end, (i + 1) * width_);
        s.points[i] += static_cast<double>(hi - lo) * weight;
    }
    ++samples_;
    noteInterval(first);
    noteInterval(last);
}

const std::map<std::uint64_t, double>*
TimeSeries::points(const std::string& name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second.points;
}

SeriesKind
TimeSeries::kindOf(const std::string& name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? SeriesKind::CounterDelta
                               : it->second.kind;
}

double
TimeSeries::exportValue(const Series& s, double raw) const
{
    if (s.kind == SeriesKind::Utilization) {
        return 100.0 * raw / static_cast<double>(width_);
    }
    return raw;
}

double
TimeSeries::mean(const std::string& name) const
{
    auto it = series_.find(name);
    if (it == series_.end() || it->second.points.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const auto& [idx, v] : it->second.points) {
        (void)idx;
        sum += exportValue(it->second, v);
    }
    return sum / static_cast<double>(it->second.points.size());
}

void
TimeSeries::clear()
{
    series_.clear();
    anyIdx_ = false;
    minIdx_ = maxIdx_ = 0;
    samples_ = 0;
    coarsenings_ = 0;
}

namespace {

std::string
tsNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
TimeSeries::toJson() const
{
    std::string out = "{\n  \"schema\": \"mscclpp.timeseries\",\n"
                      "  \"version\": 1,\n";
    out += "  \"interval_ns\": " + tsNum(sim::toNs(width_)) + ",\n";
    out += "  \"coarsenings\": " + std::to_string(coarsenings_) + ",\n";
    out += "  \"samples\": " + std::to_string(samples_) + ",\n";
    out += "  \"series\": {";
    bool first = true;
    for (const auto& [name, s] : series_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"kind\": \"" +
               toString(s.kind) + "\", \"points\": {";
        bool pFirst = true;
        for (const auto& [idx, v] : s.points) {
            out += pFirst ? "" : ", ";
            pFirst = false;
            out += "\"" + std::to_string(idx) +
                   "\": " + tsNum(exportValue(s, v));
        }
        out += "}}";
    }
    out += "\n  }\n}\n";
    return out;
}

void
TimeSeries::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open timeseries file '" + path +
                        "' for writing");
    }
    f << toJson();
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing timeseries file '" + path + "'");
    }
}

std::vector<std::string>
TimeSeries::chromeCounterEvents() const
{
    // One "C" event per (series, interval) at the interval's start
    // timestamp. Chrome holds a counter's value until the next event,
    // so sparse series render as a step function — accurate for
    // gauges, and good enough for rates to eyeball beside the spans.
    std::vector<std::string> out;
    for (const auto& [name, s] : series_) {
        for (const auto& [idx, v] : s.points) {
            double us = sim::toUs(static_cast<sim::Time>(idx) * width_);
            char ts[40];
            std::snprintf(ts, sizeof(ts), "%.6f", us);
            out.push_back("{\"name\":\"" + name +
                          "\",\"ph\":\"C\",\"pid\":" +
                          std::to_string(kHostPid) +
                          ",\"ts\":" + ts + ",\"args\":{\"value\":" +
                          tsNum(exportValue(s, v)) + "}}");
        }
    }
    return out;
}

} // namespace mscclpp::obs
