#ifndef MSCCLPP_OBS_TIMESERIES_HPP
#define MSCCLPP_OBS_TIMESERIES_HPP

#include "sim/time.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mscclpp::obs {

/**
 * What one time series measures, which decides how two adjacent
 * intervals combine when the ring coarsens:
 *
 *  - CounterDelta: events per interval (collective launches, bytes
 *    moved). Adjacent intervals *add* — a rate over 2w is the sum of
 *    the two rates over w.
 *  - Gauge: a level sampled during the interval (KV occupancy, queue
 *    depth, FIFO depth). Adjacent intervals keep the *later* sample —
 *    a level has no meaningful sum.
 *  - Utilization: busy picoseconds charged into the interval (link
 *    occupancy). Adjacent intervals add, and the export divides by
 *    the interval width so the value stays a busy percentage.
 */
enum class SeriesKind
{
    CounterDelta,
    Gauge,
    Utilization,
};

const char* toString(SeriesKind k);

/**
 * Continuous telemetry rollups against the deterministic virtual
 * clock (MSCCLPP_TIMESERIES=1): every sample lands in the fixed-width
 * interval `time / width`, so sampling is pure bucketing of events
 * the simulation already produces — no timers, no polling tasks, and
 * therefore *zero* virtual-time perturbation by construction (the
 * same invariant the Tracer keeps).
 *
 * The interval span is bounded: when the distance between the oldest
 * and newest interval would exceed the cap, the width doubles and
 * adjacent interval pairs merge per their SeriesKind — exactly the
 * Histogram::coarsen discipline, so an arbitrarily long run dumps a
 * bounded, monotonically-coarser timeline instead of dropping its
 * head. Widths only ever double from a common default, which keeps
 * every series in one dump aligned on the same grid.
 *
 * Exported two ways: the versioned `mscclpp.timeseries` v1 JSON
 * (machine-readable rollups) and Chrome "C" counter events injected
 * into the trace dump, so utilization and occupancy timelines render
 * directly beneath the span tree in Perfetto.
 */
class TimeSeries
{
  public:
#ifdef MSCCLPP_NO_OBS
    static constexpr bool kCompiledIn = false;
#else
    static constexpr bool kCompiledIn = true;
#endif

    explicit TimeSeries(sim::Time intervalWidth = kDefaultWidth);

    /** True when samples are being recorded (cheap; test on hot
     *  paths). */
    bool enabled() const { return kCompiledIn && enabled_; }
    void setEnabled(bool on) { enabled_ = kCompiledIn && on; }

    sim::Time intervalWidth() const { return width_; }
    /** Set the *initial* interval width; coarsening may double it
     *  later. Resets nothing — call before the run starts. */
    void setIntervalWidth(sim::Time width);

    /** Sample a level: the last record() in an interval wins. */
    void record(const std::string& name, sim::Time at, double value);

    /** Count events: deltas within an interval add. */
    void accumulate(const std::string& name, sim::Time at,
                    double delta);

    /** Charge a busy window [begin, end), spread across the intervals
     *  it overlaps, weighted (1.0 = one fully-busy resource). */
    void chargeRange(const std::string& name, sim::Time begin,
                     sim::Time end, double weight = 1.0);

    /** Number of distinct series recorded. */
    std::size_t seriesCount() const { return series_.size(); }

    /** Samples accepted across all series (pre-coarsening). */
    std::uint64_t samples() const { return samples_; }

    /** Times the interval width doubled to stay under the cap. */
    int coarsenings() const { return coarsenings_; }

    /** interval index -> value for @p name; empty when unknown. */
    const std::map<std::uint64_t, double>* points(
        const std::string& name) const;

    /** Kind of @p name; CounterDelta when unknown. */
    SeriesKind kindOf(const std::string& name) const;

    /** Mean value of @p name over its recorded intervals (utilization
     *  series are first normalised to busy percent, matching the
     *  exported values). */
    double mean(const std::string& name) const;

    void clear();

    /** Serialise the `mscclpp.timeseries` v1 dump. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws Error on I/O failure. */
    void writeJson(const std::string& path) const;

    /**
     * Pre-serialised Chrome "C" (counter) events, one per series per
     * non-empty interval, for injection into the trace export. Each
     * entry is a complete JSON object; utilization series are scaled
     * to percent so the viewer's y-axis reads 0-100.
     */
    std::vector<std::string> chromeCounterEvents() const;

  private:
    static constexpr sim::Time kDefaultWidth = 50'000'000; ///< 50 us
    static constexpr std::size_t kMaxIntervals = 512;

    struct Series
    {
        SeriesKind kind = SeriesKind::CounterDelta;
        std::map<std::uint64_t, double> points;
    };

    Series& open(const std::string& name, SeriesKind kind);
    void noteInterval(std::uint64_t idx);
    void coarsen();

    /** The exported value of one stored point (utilization series
     *  normalise to percent of the interval width). */
    double exportValue(const Series& s, double raw) const;

    bool enabled_ = false;
    sim::Time width_;
    std::map<std::string, Series> series_;
    std::uint64_t minIdx_ = 0;
    std::uint64_t maxIdx_ = 0;
    bool anyIdx_ = false;
    std::uint64_t samples_ = 0;
    int coarsenings_ = 0;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_TIMESERIES_HPP
