#ifndef MSCCLPP_OBS_OBS_HPP
#define MSCCLPP_OBS_OBS_HPP

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/simprof.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "obs/window.hpp"

#include <string>

namespace mscclpp::obs {

/**
 * The observability context of one simulated Machine: the event
 * tracer and the metrics registry, plus the output paths the Machine
 * dumps to on destruction when tracing was enabled via MSCCLPP_TRACE
 * (see fabric::applyObsEnvOverrides for the env gate).
 *
 * Every layer reaches this through its Machine (or an explicit
 * pointer for objects below the gpu layer, like Links and Fifos), so
 * two machines in one process never share a timeline.
 */
class ObsContext
{
  public:
    ObsContext() { window_.bind(&metrics_, &flight_); }

    Tracer& tracer() { return tracer_; }
    const Tracer& tracer() const { return tracer_; }
    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }
    StepWindow& window() { return window_; }
    const StepWindow& window() const { return window_; }
    FlightRecorder& flight() { return flight_; }
    const FlightRecorder& flight() const { return flight_; }
    Watchdog& watchdog() { return watchdog_; }
    const Watchdog& watchdog() const { return watchdog_; }
    TimeSeries& timeseries() { return timeseries_; }
    const TimeSeries& timeseries() const { return timeseries_; }
    SimProf& simprof() { return simprof_; }
    const SimProf& simprof() const { return simprof_; }

    const std::string& traceFile() const { return traceFile_; }
    const std::string& metricsFile() const { return metricsFile_; }
    const std::string& flightFile() const { return flightFile_; }
    const std::string& watchdogFile() const { return watchdogFile_; }
    const std::string& timeseriesFile() const { return timeseriesFile_; }
    const std::string& simprofFile() const { return simprofFile_; }
    void setTraceFile(std::string path) { traceFile_ = std::move(path); }
    void setMetricsFile(std::string path)
    {
        metricsFile_ = std::move(path);
    }
    void setFlightFile(std::string path)
    {
        flightFile_ = std::move(path);
    }
    void setWatchdogFile(std::string path)
    {
        watchdogFile_ = std::move(path);
    }
    void setTimeseriesFile(std::string path)
    {
        timeseriesFile_ = std::move(path);
    }
    void setSimprofFile(std::string path)
    {
        simprofFile_ = std::move(path);
    }

    /** Dump trace + metrics files when enabled (Machine teardown). */
    bool dumpOnDestroy() const { return dumpOnDestroy_; }
    void setDumpOnDestroy(bool on) { dumpOnDestroy_ = on; }

    /**
     * Write the Chrome trace and metrics JSON to the configured
     * paths. @return a short human-readable description of what was
     * written (for the one-line teardown log).
     */
    std::string dump();

  private:
    Tracer tracer_;
    MetricsRegistry metrics_;
    StepWindow window_{tracer_};
    FlightRecorder flight_;
    Watchdog watchdog_;
    TimeSeries timeseries_;
    SimProf simprof_;
    std::string traceFile_ = "trace.json";
    std::string metricsFile_ = "metrics.json";
    std::string flightFile_ = "flight.json";
    std::string watchdogFile_ = "hang.json";
    std::string timeseriesFile_ = "timeseries.json";
    std::string simprofFile_ = "simprof.json";
    bool dumpOnDestroy_ = false;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_OBS_HPP
