#include "obs/watchdog.hpp"

#include "core/errors.hpp"
#include "obs/flight.hpp"
#include "obs/window.hpp"
#include "sim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace mscclpp::obs {

namespace {

constexpr const char* kLinkPrefix = "link:";

bool
isLinkParty(const std::string& party)
{
    return party.rfind(kLinkPrefix, 0) == 0;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNum(double v)
{
    char buf[40];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

std::string
partiesJson(const std::vector<std::string>& parties)
{
    std::string out = "[";
    bool first = true;
    for (const std::string& p : parties) {
        out += first ? "" : ", ";
        first = false;
        out += "\"" + jsonEscape(p) + "\"";
    }
    out += "]";
    return out;
}

} // namespace

const char*
toString(WaitKind k)
{
    switch (k) {
      case WaitKind::SemWait:
        return "sem_wait";
      case WaitKind::FifoPop:
        return "fifo_pop";
      case WaitKind::FifoPush:
        return "fifo_push";
      case WaitKind::Flush:
        return "flush";
      case WaitKind::Barrier:
        return "barrier";
      case WaitKind::Reservation:
        return "reservation";
    }
    return "?";
}

const char*
toString(WatchdogMode m)
{
    switch (m) {
      case WatchdogMode::Off:
        return "off";
      case WatchdogMode::Report:
        return "report";
      case WatchdogMode::Abort:
        return "abort";
    }
    return "?";
}

std::string
HangReport::toJson() const
{
    std::string out = "{\"at_ns\": " + jsonNum(sim::toNs(at));
    out += ", \"classification\": \"" + jsonEscape(classification) + "\"";
    out += ", \"op\": \"" + jsonEscape(blocked.opLabel) + "\"";
    out += ", \"step\": {\"label\": \"" + jsonEscape(stepLabel) +
           "\", \"baselined\": ";
    out += stepBaselined ? "true" : "false";
    out += ", \"pre_stall_sigmas\": " + jsonNum(stepSigmas) + "}";
    out += ", \"blocked\": {\"kind\": \"" +
           std::string(toString(blocked.kind)) + "\", \"waiter\": \"" +
           jsonEscape(blocked.waiter) + "\", \"waiter_detail\": \"" +
           jsonEscape(blocked.waiterDetail) + "\", \"owed\": \"" +
           jsonEscape(blocked.owed) + "\", \"owed_detail\": \"" +
           jsonEscape(blocked.owedDetail) +
           "\", \"since_ns\": " + jsonNum(sim::toNs(blocked.since)) +
           ", \"wait_ns\": " + jsonNum(sim::toNs(at - blocked.since)) +
           "}";
    out += ", \"chain\": " + partiesJson(chain);
    out += ", \"cycle\": " + partiesJson(cycle);
    out += ", \"root_cause\": {\"party\": \"" + jsonEscape(rootCause) +
           "\", \"reason\": \"" + jsonEscape(rootCauseReason) +
           "\", \"detail\": \"" + jsonEscape(rootCauseDetail) + "\"}";
    out += ", \"degraded_links\": {";
    bool first = true;
    for (const auto& [name, factor] : degradedLinks) {
        out += first ? "" : ", ";
        first = false;
        out += "\"" + jsonEscape(name) + "\": " + jsonNum(factor);
    }
    out += "}";
    out += ", \"window\": ";
    out += windowJson.empty() ? std::string("{}") : windowJson;
    out += "}";
    return out;
}

std::string
HangReport::summaryLine() const
{
    std::string line = "[watchdog] " + classification + " at " +
                       sim::formatTime(at) + ": " + blocked.waiter +
                       " blocked " + sim::formatTime(at - blocked.since) +
                       " in " +
                       (blocked.opLabel.empty() ? std::string("<no op>")
                                                : blocked.opLabel) +
                       " on " + std::string(toString(blocked.kind)) +
                       ", owed by " + blocked.owed;
    line += "; root cause " + rootCause + " (" + rootCauseReason;
    if (!rootCauseDetail.empty()) {
        line += ": " + rootCauseDetail;
    }
    line += ")";
    if (!cycle.empty()) {
        line += "; cycle";
        for (const std::string& p : cycle) {
            line += " -> " + p;
        }
    }
    return line;
}

std::uint64_t
Watchdog::registerWait(WaitKind kind, std::string waiter,
                       std::string waiterDetail, std::string owed,
                       std::string owedDetail, bool reportable)
{
    if (!enabled()) {
        return 0;
    }
    WaitPoint w;
    w.id = nextId_++;
    w.kind = kind;
    w.waiter = std::move(waiter);
    w.waiterDetail = std::move(waiterDetail);
    w.owed = std::move(owed);
    w.owedDetail = std::move(owedDetail);
    w.opLabel = opStack_.empty() ? std::string() : opStack_.back();
    w.since = sched_->now();
    w.reportable = reportable;
    std::uint64_t id = w.id;
    waits_.emplace(id, std::move(w));
    return id;
}

void
Watchdog::completeWait(std::uint64_t token)
{
    if (token == 0) {
        return;
    }
    waits_.erase(token);
}

void
Watchdog::setLiveness(const std::string& party, bool alive)
{
    if (!enabled()) {
        return;
    }
    liveness_[party] = alive;
}

void
Watchdog::noteDegradedLink(const std::string& linkName, double factor)
{
    if (!enabled()) {
        return;
    }
    degraded_[linkName] = factor;
}

void
Watchdog::pushOp(std::string label)
{
    if (!enabled()) {
        return;
    }
    opStack_.push_back(std::move(label));
}

void
Watchdog::popOp()
{
    if (!enabled() || opStack_.empty()) {
        return;
    }
    opStack_.pop_back();
}

WaitPoint*
Watchdog::oldestUnreported()
{
    // Prefer non-barrier waits as the report anchor: the kernel
    // completion barrier registers at launch, so it is almost always
    // the oldest wait of a hung rank — but it is a downstream symptom
    // of whatever primitive actually stalled. Anchoring the tick on
    // the oldest *primitive* wait makes that wait the report subject
    // (it has expired by exactly the threshold when the tick fires)
    // and lets the barrier be swept into its chain.
    WaitPoint* bestPrimitive = nullptr;
    WaitPoint* bestAny = nullptr;
    for (auto& [id, w] : waits_) {
        if (!w.reportable || w.reported) {
            continue;
        }
        if (bestAny == nullptr || w.since < bestAny->since) {
            bestAny = &w;
        }
        if (w.kind != WaitKind::Barrier &&
            (bestPrimitive == nullptr || w.since < bestPrimitive->since)) {
            bestPrimitive = &w;
        }
    }
    return bestPrimitive != nullptr ? bestPrimitive : bestAny;
}

WaitPoint*
Watchdog::oldestWaitOf(const std::string& party,
                       const std::map<std::uint64_t, bool>& visited)
{
    WaitPoint* best = nullptr;
    for (auto& [id, w] : waits_) {
        if (w.waiter != party || visited.count(id) != 0) {
            continue;
        }
        if (best == nullptr || w.since < best->since) {
            best = &w;
        }
    }
    return best;
}

void
Watchdog::onIdle()
{
    if (!enabled() || tickPending_ || reports_.size() >= kMaxReports) {
        return;
    }
    WaitPoint* oldest = oldestUnreported();
    if (oldest == nullptr) {
        return;
    }
    // The queue drained with blocked coroutines outstanding: virtual
    // time can only advance through this tick, so fire it exactly at
    // the oldest wait's deadline (since + threshold).
    sim::Time deadline = oldest->since + threshold_;
    tickPending_ = true;
    sched_->scheduleAt(deadline, [this] { tick(); },
                       "obs.watchdog");
}

void
Watchdog::tick()
{
    tickPending_ = false;
    const sim::Time now = sched_->now();

    // All expired, unreported, reportable waits; real stalls first
    // (barriers are usually downstream symptoms of the actual missing
    // signal), then registration order.
    std::vector<WaitPoint*> expired;
    for (auto& [id, w] : waits_) {
        if (w.reportable && !w.reported && now - w.since >= threshold_) {
            expired.push_back(&w);
        }
    }
    std::sort(expired.begin(), expired.end(),
              [](const WaitPoint* a, const WaitPoint* b) {
                  bool ab = a->kind == WaitKind::Barrier;
                  bool bb = b->kind == WaitKind::Barrier;
                  if (ab != bb) {
                      return bb;
                  }
                  if (a->since != b->since) {
                      return a->since < b->since;
                  }
                  return a->id < b->id;
              });

    std::vector<std::string> diagnosed;
    for (WaitPoint* w : expired) {
        if (w->reported) {
            continue; // swept into an earlier report's chain
        }
        // A barrier whose party is already on a diagnosed chain is a
        // consequence of that report, not a second hang.
        if (w->kind == WaitKind::Barrier &&
            std::find(diagnosed.begin(), diagnosed.end(), w->waiter) !=
                diagnosed.end()) {
            w->reported = true;
            continue;
        }
        if (reports_.size() >= kMaxReports) {
            break;
        }
        HangReport rep = buildReport(*w);
        for (const std::string& p : rep.chain) {
            diagnosed.push_back(p);
        }
        std::fprintf(stderr, "%s\n", rep.summaryLine().c_str());
        if (tracer_ != nullptr && tracer_->enabled()) {
            tracer_->span(Category::Step, "hang." + rep.classification,
                          kHostPid, "watchdog", now, now, 0, -1,
                          rep.rootCause + " (" + rep.rootCauseReason +
                              ")");
        }
        reports_.push_back(std::move(rep));
        if (mode_ == WatchdogMode::Abort) {
            throw Error(ErrorCode::Timeout,
                        reports_.back().summaryLine());
        }
    }
}

HangReport
Watchdog::buildReport(WaitPoint& blocked)
{
    HangReport rep;
    rep.at = sched_->now();
    blocked.reported = true;
    rep.blocked = blocked;
    rep.classification = "straggler";
    rep.chain.push_back(blocked.waiter);

    std::map<std::uint64_t, bool> visited;
    visited[blocked.id] = true;
    std::string owed = blocked.owed;
    std::string owedDetail = blocked.owedDetail;

    for (std::size_t hop = 0; hop < kMaxHops; ++hop) {
        auto pos = std::find(rep.chain.begin(), rep.chain.end(), owed);
        if (pos != rep.chain.end() && owed != rep.chain.back()) {
            // Back to a party already on the chain: a genuine cycle.
            rep.classification = "deadlock";
            rep.cycle.assign(pos, rep.chain.end());
            rep.rootCause = owed;
            rep.rootCauseReason = "cyclic_wait";
            rep.rootCauseDetail = owedDetail;
            break;
        }
        if (pos == rep.chain.end()) {
            rep.chain.push_back(owed);
        }
        if (isLinkParty(owed)) {
            std::string name = owed.substr(std::string(kLinkPrefix).size());
            rep.rootCause = owed;
            rep.rootCauseReason = degraded_.count(name) != 0
                                      ? "degraded_link"
                                      : "link_contention";
            rep.rootCauseDetail = owedDetail;
            break;
        }
        auto lv = liveness_.find(owed);
        if (lv != liveness_.end() && !lv->second) {
            rep.rootCause = owed;
            rep.rootCauseReason = "dead_proxy";
            rep.rootCauseDetail = owedDetail;
            break;
        }
        WaitPoint* next = oldestWaitOf(owed, visited);
        if (next == nullptr) {
            // The owed party has nothing it is itself waiting for: it
            // simply never produced the signal.
            rep.rootCause = owed;
            rep.rootCauseReason = "missing_signal";
            rep.rootCauseDetail = owedDetail;
            break;
        }
        visited[next->id] = true;
        next->reported = true; // diagnosed as part of this chain
        owed = next->owed;
        owedDetail = next->owedDetail;
    }
    if (rep.rootCause.empty()) {
        rep.rootCause = owed;
        rep.rootCauseReason = "missing_signal";
        rep.rootCauseDetail = owedDetail;
    }

    if (window_ != nullptr && window_->active()) {
        rep.stepLabel = window_->activeLabel();
        if (flight_ != nullptr) {
            const LatencyBaseline* base =
                flight_->baselineFor(rep.stepLabel);
            if (base != nullptr &&
                base->samples >=
                    static_cast<std::uint64_t>(flight_->warmup())) {
                double preNs =
                    sim::toNs(blocked.since - window_->activeBegin());
                double sigma = base->effectiveSigmaNs();
                if (sigma > 0.0) {
                    rep.stepSigmas = (preNs - base->mean) / sigma;
                    rep.stepBaselined = true;
                }
            }
        }
    }
    rep.degradedLinks = degraded_;

    if (tracer_ != nullptr && tracer_->enabled()) {
        sim::Time from =
            blocked.since > threshold_ ? blocked.since - threshold_ : 0;
        rep.windowJson = FlightRecorder::dumpWindowJson(
            tracer_->snapshotWindow(from, rep.at),
            tracer_->edgesSnapshotWindow(from, rep.at));
    }
    return rep;
}

std::string
Watchdog::toJson() const
{
    std::string out = "{\"schema\": \"mscclpp.hang\", \"version\": 1";
    out += ", \"mode\": \"" + std::string(toString(mode_)) + "\"";
    out += ", \"threshold_ns\": " + jsonNum(sim::toNs(threshold_));
    out += ", \"outstanding_waits\": " + std::to_string(waits_.size());
    out += ", \"reports\": [";
    bool first = true;
    for (const HangReport& r : reports_) {
        out += first ? "" : ", ";
        first = false;
        out += r.toJson();
    }
    out += "]}\n";
    return out;
}

void
Watchdog::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open hang file '" + path + "' for writing");
    }
    f << toJson();
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing hang file '" + path + "'");
    }
}

} // namespace mscclpp::obs
