#ifndef MSCCLPP_OBS_SLOMON_HPP
#define MSCCLPP_OBS_SLOMON_HPP

#include "sim/time.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace mscclpp::obs {

/**
 * One structured alert record (`mscclpp.alerts` v1): the virtual
 * timestamps it fired and cleared at, the burn rates of both windows
 * at fire time, and the blamed dimension — the replica whose requests
 * violated most inside the fast window, and the fabric link the
 * correlation callback pinned the regression on.
 */
struct SloAlert
{
    int id = 0;
    std::string dimension;   ///< "ttft" or "tpot"
    sim::Time firedAt = 0;
    sim::Time clearedAt = 0; ///< 0 while still active
    std::uint64_t fireInterval = 0;
    double burnFast = 0.0;   ///< fast-window burn rate at fire
    double burnSlow = 0.0;   ///< slow-window burn rate at fire
    int blamedReplica = -1;
    std::string blamedLink;  ///< "" when no link could be blamed

    bool active() const { return clearedAt == 0; }
    std::string toJson() const;
};

/**
 * Multi-window SLO burn-rate monitor (Prometheus's multiwindow
 * multi-burn-rate alerting recipe, applied to the simulator's virtual
 * clock): request completions bucket into fixed virtual-time
 * intervals, each interval tracks the fraction of completions that
 * violated the TTFT / TPOT SLO, and an alert fires when the burn rate
 * — violation fraction divided by the error budget — exceeds the
 * threshold over *both* a fast window (quick detection) and a slow
 * window (immune to one bad interval). The alert clears as soon as
 * the fast window's burn rate drops back below the threshold, which
 * is what makes recovery visible within a bounded number of
 * intervals.
 *
 * Evaluation happens inside onRequestDone — pure bookkeeping on
 * events the serving layer already produces — so like every obs
 * surface it never advances virtual time. Cluster-level by the same
 * argument as the RequestTracer: one request's latency spans
 * replicas, so no single Machine's ObsContext can own the signal.
 * Compiled out under -DMSCCLPP_NO_OBS the same way (enabled() is
 * constant false, every hook a dead branch).
 *
 * Blame is delegated: on fire the monitor picks the replica with the
 * most violations in the fast window and asks the registered
 * LinkBlamer — the serving cluster, which can see every replica's
 * flight-recorder digests and critical-path link buckets — which
 * link to name for that replica over the alert window.
 */
class SloMonitor
{
  public:
#ifdef MSCCLPP_NO_OBS
    static constexpr bool kCompiledIn = false;
#else
    static constexpr bool kCompiledIn = true;
#endif

    /** Returns the culprit link for @p replica over [begin, end]. */
    using LinkBlamer = std::function<std::string(
        int replica, sim::Time begin, sim::Time end)>;

    bool enabled() const { return kCompiledIn && enabled_; }
    void setEnabled(bool on) { enabled_ = kCompiledIn && on; }

    const std::string& file() const { return file_; }
    void setFile(std::string path) { file_ = std::move(path); }

    sim::Time intervalWidth() const { return width_; }
    void setIntervalWidth(sim::Time w);

    sim::Time sloTtft() const { return sloTtft_; }
    sim::Time sloTpot() const { return sloTpot_; }
    void setSlo(sim::Time ttft, sim::Time tpot)
    {
        sloTtft_ = ttft;
        sloTpot_ = tpot;
    }

    int fastIntervals() const { return fast_; }
    int slowIntervals() const { return slow_; }
    void setWindows(int fast, int slow);

    double budget() const { return budget_; }
    void setBudget(double b);

    double burnThreshold() const { return threshold_; }
    void setBurnThreshold(double t);

    void setLinkBlamer(LinkBlamer b) { blamer_ = std::move(b); }

    /**
     * One request finished on @p replica with the given latencies.
     * Each dimension observes the request at its own natural
     * timestamp — TTFT at @p firstTokenAt (when the slow first token
     * actually happened), TPOT at @p completedAt — so a request that
     * prefilled through a fault but decoded long after it still burns
     * the fault-era intervals, not the era it happened to retire in.
     */
    void onRequestDone(int replica, sim::Time firstTokenAt,
                       sim::Time completedAt, sim::Time ttft,
                       sim::Time tpot);

    /** Stamp a mid-run fault / recovery so the alerts dump carries
     *  the injected timeline next to the fired one. */
    void noteFault(int replica, std::string link, double factor,
                   sim::Time at);

    std::uint64_t observed() const { return observed_; }
    std::uint64_t ttftViolations() const { return ttftViol_; }
    std::uint64_t tpotViolations() const { return tpotViol_; }

    /** Every alert ever fired, in fire order (cleared ones keep
     *  their clear timestamp). */
    const std::vector<SloAlert>& alerts() const { return alerts_; }

    /** Alerts still active (fired, not yet cleared). */
    std::size_t activeAlerts() const;

    /** Serialise the `mscclpp.alerts` v1 dump. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws Error on I/O failure. */
    void writeJson(const std::string& path) const;

  private:
    /// Per-interval observation tally. Totals are per dimension
    /// because the two dimensions bucket the same request at
    /// different timestamps (first token vs completion).
    struct Interval
    {
        std::uint64_t ttftTotal = 0;
        std::uint64_t tpotTotal = 0;
        std::uint64_t ttftViol = 0;
        std::uint64_t tpotViol = 0;
        std::map<int, std::uint64_t> ttftViolByReplica;
        std::map<int, std::uint64_t> tpotViolByReplica;
    };

    struct Window
    {
        std::uint64_t total = 0;
        std::uint64_t viol = 0;
        std::map<int, std::uint64_t> violByReplica;

        double fraction() const
        {
            return total == 0
                       ? 0.0
                       : static_cast<double>(viol) /
                             static_cast<double>(total);
        }
    };

    struct FaultStamp
    {
        int replica = 0;
        std::string link;
        double factor = 1.0;
        sim::Time at = 0;
    };

    Window windowStats(std::uint64_t from, std::uint64_t to,
                       bool ttft) const;
    void evaluate(bool ttft, std::uint64_t curIdx, sim::Time at);
    void prune(std::uint64_t curIdx);

    bool enabled_ = false;
    std::string file_ = "alerts.json";
    sim::Time width_ = sim::msec(100);
    sim::Time sloTtft_ = 0;
    sim::Time sloTpot_ = 0;
    int fast_ = 4;
    int slow_ = 16;
    double budget_ = 0.1;
    double threshold_ = 1.0;
    LinkBlamer blamer_;

    std::map<std::uint64_t, Interval> intervals_;
    std::vector<SloAlert> alerts_;
    int activeTtft_ = -1; ///< index into alerts_, -1 when none
    int activeTpot_ = -1;
    /// Newest interval each dimension has evaluated (see
    /// onRequestDone: decisions happen only at the frontier).
    std::uint64_t ttftFrontier_ = 0;
    std::uint64_t tpotFrontier_ = 0;
    sim::Time ttftFrontierAt_ = 0;
    sim::Time tpotFrontierAt_ = 0;
    std::vector<FaultStamp> faults_;

    std::uint64_t observed_ = 0;
    std::uint64_t ttftViol_ = 0;
    std::uint64_t tpotViol_ = 0;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_SLOMON_HPP
