#ifndef MSCCLPP_OBS_TRACE_HPP
#define MSCCLPP_OBS_TRACE_HPP

#include "sim/time.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mscclpp::obs {

/**
 * Event taxonomy, one category per instrumented layer of the stack
 * (DESIGN.md "Observability"). Categories map onto Chrome-trace `cat`
 * fields so Perfetto can filter per layer.
 */
enum class Category
{
    Collective, ///< whole-collective root spans (collective/api)
    Executor,   ///< per-IR-step spans of the DSL executor
    Channel,    ///< device-side put/signal/wait/flush primitives
    Proxy,      ///< CPU proxy request lifecycle (Figure 7 steps 2-4)
    Fifo,       ///< GPU->CPU request queue push/pop
    Link,       ///< per-hop wire serialisation windows
    Kernel,     ///< kernel launches and thread-block lifetimes
    Step,       ///< serving-step windows (obs/window.hpp), one span
                ///< per beginStep()/endStep() pair on a "steps" track
    Request,    ///< per-request lifecycle spans mirrored from the
                ///< serving layer onto the kRequestPid pseudo-process
};

const char* toString(Category c);

/// Pseudo-process ids for tracks that belong to no simulated device.
/// Device ranks are small; these stay clear of any realistic cluster.
inline constexpr int kHostPid = 10000;    ///< host-side API calls
inline constexpr int kFabricPid = 10001;  ///< links and switches
inline constexpr int kRequestPid = 10002; ///< request span trees

/**
 * One completed span recorded against the deterministic virtual
 * clock. `pid` selects the Chrome-trace process (device rank, or a
 * pseudo-process above); `track` names the thread within it (a thread
 * block, the proxy thread, a link direction).
 */
struct TraceEvent
{
    Category cat = Category::Channel;
    std::string name;
    int pid = 0;
    std::string track;
    sim::Time begin = 0;
    sim::Time end = 0;
    std::uint64_t bytes = 0; ///< payload carried, 0 when n/a
    int channelId = -1;      ///< owning channel, -1 when n/a
    std::string detail;      ///< free-form annotation (e.g. the
                             ///< bottleneck link a put serialised on)
};

/**
 * Causal (happens-before) edge between two points of the trace. Spans
 * alone only give nesting; edges connect the moment one track *caused*
 * progress on another, which is exactly what critical-path extraction
 * (obs/critpath.hpp) walks backwards over.
 */
enum class EdgeKind
{
    Signal,       ///< semaphore signal issue -> waiter resume
    FifoHop,      ///< proxy FIFO push complete -> CPU pop complete
    LinkDelivery, ///< wire serialisation start -> last-byte delivery
    Launch,       ///< host kernel launch -> thread-block start
    Dispatch,     ///< request span -> the serving step that ran it
                  ///< (informational; never on a collective's path)
};

const char* toString(EdgeKind k);

struct TraceEdge
{
    EdgeKind kind = EdgeKind::Signal;
    int srcPid = 0;
    std::string srcTrack;
    sim::Time srcTime = 0;
    int dstPid = 0;
    std::string dstTrack;
    sim::Time dstTime = 0;
    std::uint64_t bytes = 0;
    int channelId = -1;
};

/**
 * NPKit-style per-Machine event recorder: a fixed-capacity ring
 * buffer of typed spans plus a second ring of causal edges. Recording
 * is gated twice — compile out every call site with -DMSCCLPP_NO_OBS,
 * and at runtime nothing is stored unless setEnabled(true) (the
 * MSCCLPP_TRACE env gate) was called. The disabled fast path is a
 * single branch on a bool.
 *
 * The tracer never advances virtual time: instrumentation observes
 * the schedule, it does not perturb it.
 */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = kDefaultCapacity);

#ifdef MSCCLPP_NO_OBS
    static constexpr bool kCompiledIn = false;
#else
    static constexpr bool kCompiledIn = true;
#endif

    /** True when spans are being recorded (cheap; test on hot paths). */
    bool enabled() const { return kCompiledIn && enabled_; }

    void setEnabled(bool on) { enabled_ = kCompiledIn && on; }

    /** Record a completed span. No-op when disabled. */
    void span(Category cat, std::string name, int pid, std::string track,
              sim::Time begin, sim::Time end, std::uint64_t bytes = 0,
              int channelId = -1, std::string detail = {});

    /** Record a zero-duration marker. */
    void instant(Category cat, std::string name, int pid,
                 std::string track, sim::Time at, std::uint64_t bytes = 0,
                 int channelId = -1)
    {
        span(cat, std::move(name), pid, std::move(track), at, at, bytes,
             channelId);
    }

    /** Record a causal edge. No-op when disabled. */
    void edge(EdgeKind kind, int srcPid, std::string srcTrack,
              sim::Time srcTime, int dstPid, std::string dstTrack,
              sim::Time dstTime, std::uint64_t bytes = 0,
              int channelId = -1);

    /**
     * Request context the serving layer is currently stepping (e.g.
     * "req=3,7"). While set, collective root spans carry it in their
     * detail, which is what ties a request id to the collectives it
     * rode — the downward half of request-scoped tracing. Cleared by
     * setting the empty string.
     */
    void setRequestContext(std::string ctx)
    {
        if (enabled()) {
            requestContext_ = std::move(ctx);
        }
    }

    const std::string& requestContext() const { return requestContext_; }

    /** Events currently held (<= capacity). */
    std::size_t size() const { return events_.size(); }

    /** Edges currently held (<= capacity). */
    std::size_t edgeCount() const { return edges_.size(); }

    /** Events overwritten because the event ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /** Edges overwritten because the edge ring was full. */
    std::uint64_t edgesDropped() const { return edgesDropped_; }

    std::size_t capacity() const { return capacity_; }

    /** Copy of the buffered events in record order. */
    std::vector<TraceEvent> snapshot() const;

    /** Copy of the buffered edges in record order. */
    std::vector<TraceEdge> edgesSnapshot() const;

    /**
     * Events lying fully inside [from, to], in record order — the
     * step profiler's per-window view. Avoids copying the whole ring
     * (and its strings) for every serving step.
     */
    std::vector<TraceEvent> snapshotWindow(sim::Time from,
                                           sim::Time to) const;

    /** Edges whose destination lies in [from, to], in record order. */
    std::vector<TraceEdge> edgesSnapshotWindow(sim::Time from,
                                               sim::Time to) const;

    void clear();

    /**
     * Serialise to Chrome trace_events JSON (chrome://tracing and
     * Perfetto): one process per pid with a metadata name, one thread
     * per distinct track within it, spans as "X" complete events with
     * microsecond timestamps. The top-level `otherData` object carries
     * the ring-buffer drop counters so a truncated trace is never
     * silently mistaken for a complete one.
     *
     * @p extraEvents are pre-serialised trace-event objects appended
     * verbatim after the span events — the TimeSeries counter ("C")
     * tracks ride here so rollup timelines render beside the spans.
     */
    std::string chromeTraceJson(
        const std::vector<std::string>& extraEvents = {}) const;

    /** Write chromeTraceJson() to @p path; throws Error on I/O
     *  failure. */
    void writeChromeTrace(const std::string& path,
                          const std::vector<std::string>& extraEvents =
                              {}) const;

  private:
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    bool enabled_ = false;
    std::size_t capacity_;
    std::vector<TraceEvent> events_;
    std::size_t head_ = 0; ///< oldest element once the ring wrapped
    std::uint64_t dropped_ = 0;
    std::vector<TraceEdge> edges_;
    std::size_t edgeHead_ = 0;
    std::uint64_t edgesDropped_ = 0;
    std::string requestContext_;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_TRACE_HPP
