#include "obs/flight.hpp"

#include "core/errors.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace mscclpp::obs {

namespace {

std::string
jsonNum(double v)
{
    char buf[40];
    // Integral values (the common case: whole nanoseconds) print
    // exactly, so the dump preserves the recorder's exact-merge
    // invariant (aggregate == dropped + sum(ring)) digit for digit.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
bucketsJson(const std::map<StepCategory, sim::Time>& buckets)
{
    std::string out = "{";
    bool first = true;
    for (StepCategory c : kStepCategories) {
        auto it = buckets.find(c);
        sim::Time t = it == buckets.end() ? 0 : it->second;
        out += first ? "" : ", ";
        first = false;
        out += std::string("\"") + toString(c) +
               "\": " + jsonNum(sim::toNs(t));
    }
    out += "}";
    return out;
}

} // namespace

double
LatencyBaseline::sigmaNs() const
{
    return std::sqrt(std::max(var, 0.0));
}

double
LatencyBaseline::effectiveSigmaNs() const
{
    return std::max(sigmaNs(), 0.005 * mean);
}

/**
 * Bounded dump of the offending window: its raw events plus the
 * critical path of every collective inside it. Only built when an
 * anomaly or hang report fires, so the healthy-path cost is zero.
 */
std::string
FlightRecorder::dumpWindowJson(const std::vector<TraceEvent>& events,
                               const std::vector<TraceEdge>& edges)
{
    constexpr std::size_t kMaxDumpEvents = 4096;
    std::string out = "{\"events\": [";
    std::size_t emitted = 0;
    for (const TraceEvent& ev : events) {
        if (emitted == kMaxDumpEvents) {
            break;
        }
        out += emitted == 0 ? "" : ", ";
        ++emitted;
        out += "{\"cat\": \"" + std::string(toString(ev.cat)) +
               "\", \"name\": \"" + jsonEscape(ev.name) +
               "\", \"pid\": " + std::to_string(ev.pid) +
               ", \"track\": \"" + jsonEscape(ev.track) +
               "\", \"begin_ns\": " + jsonNum(sim::toNs(ev.begin)) +
               ", \"dur_ns\": " + jsonNum(sim::toNs(ev.end - ev.begin)) +
               ", \"bytes\": " + std::to_string(ev.bytes);
        if (!ev.detail.empty()) {
            out += ", \"detail\": \"" + jsonEscape(ev.detail) + "\"";
        }
        out += "}";
    }
    out += "], \"events_truncated\": ";
    out += events.size() > kMaxDumpEvents ? "true" : "false";
    out += ", \"critical_paths\": [";
    CritPathAnalyzer analyzer(events, edges);
    bool first = true;
    for (const TraceEvent& coll : analyzer.collectives()) {
        std::optional<CriticalPathReport> rep = analyzer.analyze(coll);
        if (!rep) {
            continue;
        }
        out += first ? "" : ", ";
        first = false;
        out += rep->toJson();
    }
    out += "]}";
    return out;
}

std::string
StepDigest::toJson() const
{
    std::string out =
        "{\"index\": " + std::to_string(index) + ", \"label\": \"" +
        jsonEscape(label) +
        "\", \"begin_ns\": " + jsonNum(sim::toNs(begin)) +
        ", \"window_ns\": " + jsonNum(sim::toNs(end - begin)) +
        ", \"measured_ns\": " + jsonNum(sim::toNs(measured)) +
        ", \"buckets\": " + bucketsJson(buckets) +
        ", \"straggler_rank\": " + std::to_string(stragglerRank) +
        ", \"culprit_link\": \"" + jsonEscape(culpritLink) +
        "\", \"anomalous\": ";
    out += anomalous ? "true" : "false";
    out += ", \"sigmas\": " + jsonNum(sigmas) + "}";
    return out;
}

void
DigestAggregate::merge(const StepDigest& d)
{
    ++count;
    measured += d.measured;
    for (const auto& [cat, t] : d.buckets) {
        buckets[cat] += t;
    }
}

bool
DigestAggregate::operator==(const DigestAggregate& o) const
{
    if (count != o.count || measured != o.measured) {
        return false;
    }
    for (StepCategory c : kStepCategories) {
        auto a = buckets.find(c);
        auto b = o.buckets.find(c);
        sim::Time ta = a == buckets.end() ? 0 : a->second;
        sim::Time tb = b == o.buckets.end() ? 0 : b->second;
        if (ta != tb) {
            return false;
        }
    }
    return true;
}

std::string
DigestAggregate::toJson() const
{
    return "{\"count\": " + std::to_string(count) +
           ", \"measured_ns\": " + jsonNum(sim::toNs(measured)) +
           ", \"buckets\": " + bucketsJson(buckets) + "}";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{
}

void
FlightRecorder::setCapacity(std::size_t capacity)
{
    capacity = std::max<std::size_t>(capacity, 1);
    std::vector<StepDigest> kept = ring();
    ring_.clear();
    head_ = 0;
    capacity_ = capacity;
    // Re-push oldest first; overflow merges into dropped_ exactly as
    // if the ring had always been this size.
    for (StepDigest& d : kept) {
        push(std::move(d));
    }
}

const LatencyBaseline*
FlightRecorder::baselineFor(const std::string& label) const
{
    auto it = baselines_.find(label);
    return it == baselines_.end() ? nullptr : &it->second;
}

double
FlightRecorder::ewmaMeanNs() const
{
    const LatencyBaseline* b = baselineFor(lastLabel_);
    return b ? b->mean : 0.0;
}

double
FlightRecorder::ewmaSigmaNs() const
{
    const LatencyBaseline* b = baselineFor(lastLabel_);
    return b ? b->sigmaNs() : 0.0;
}

std::uint64_t
FlightRecorder::baselineSamples() const
{
    const LatencyBaseline* b = baselineFor(lastLabel_);
    return b ? b->samples : 0;
}

const FlightAnomaly*
FlightRecorder::firstAnomalyAtOrAfter(std::uint64_t stepIndex) const
{
    for (const FlightAnomaly& a : anomalies_) {
        if (a.digest.index >= stepIndex) {
            return &a;
        }
    }
    return nullptr;
}

std::vector<StepDigest>
FlightRecorder::ring() const
{
    std::vector<StepDigest> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
}

void
FlightRecorder::push(StepDigest d)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(d));
        return;
    }
    dropped_.merge(ring_[head_]);
    ring_[head_] = std::move(d);
    head_ = (head_ + 1) % capacity_;
}

void
FlightRecorder::onStep(const StepAttribution& att,
                       const std::vector<TraceEvent>& events,
                       const std::vector<TraceEdge>& edges)
{
    if (!enabled_) {
        return;
    }
    StepDigest d;
    d.index = nextIndex_++;
    d.label = att.label;
    d.begin = att.begin;
    d.end = att.end;
    d.measured = att.measured;
    d.buckets = att.buckets;
    d.stragglerRank = att.stragglerRank;
    d.culpritLink = att.culpritLink;

    // Each label keeps its own baseline: a prefill step is only ever
    // compared against prefill history, a backend-B decode step
    // against backend-B history.
    LatencyBaseline& base = baselines_[d.label];
    lastLabel_ = d.label;
    const double xNs = sim::toNs(d.measured);
    bool anomaly = false;
    if (base.samples >= static_cast<std::uint64_t>(warmup_)) {
        const double effSigma = base.effectiveSigmaNs();
        if (effSigma > 0.0 && xNs > base.mean + k_ * effSigma) {
            anomaly = true;
            d.anomalous = true;
            d.sigmas = (xNs - base.mean) / effSigma;
            ++anomalyTotal_;
            if (anomalies_.size() < kMaxAnomalies) {
                FlightAnomaly a;
                a.digest = d;
                a.baselineNs = base.mean;
                a.sigmaNs = effSigma;
                a.attributionJson = att.toJson();
                a.windowJson = dumpWindowJson(events, edges);
                anomalies_.push_back(std::move(a));
            }
        }
    }
    if (!anomaly) {
        // Standard EWMA mean/variance update; anomalous samples are
        // excluded so a fault cannot become the new baseline.
        if (base.samples == 0) {
            base.mean = xNs;
            base.var = 0.0;
        } else {
            const double diff = xNs - base.mean;
            const double incr = alpha_ * diff;
            base.mean += incr;
            base.var = (1.0 - alpha_) * (base.var + diff * incr);
        }
        ++base.samples;
    }
    aggregate_.merge(d);
    push(std::move(d));
}

void
FlightRecorder::clear()
{
    ring_.clear();
    head_ = 0;
    dropped_ = DigestAggregate{};
    aggregate_ = DigestAggregate{};
    baselines_.clear();
    lastLabel_.clear();
    nextIndex_ = 0;
    anomalies_.clear();
    anomalyTotal_ = 0;
}

std::string
FlightRecorder::toJson() const
{
    std::string out = "{\"schema\": \"mscclpp.flight\", \"version\": 1";
    out += ", \"sigma_k\": " + jsonNum(k_);
    out += ", \"warmup\": " + std::to_string(warmup_);
    out += ", \"capacity\": " + std::to_string(capacity_);
    out += ", \"steps_total\": " + std::to_string(aggregate_.count);
    out += ", \"anomalies_total\": " + std::to_string(anomalyTotal_);
    // "baseline" keeps the pre-split shape (the most recent label's
    // view); "baselines" carries the full per-label split.
    out += ", \"baseline\": {\"ewma_mean_ns\": " + jsonNum(ewmaMeanNs()) +
           ", \"ewma_sigma_ns\": " + jsonNum(ewmaSigmaNs()) +
           ", \"samples\": " + std::to_string(baselineSamples()) + "}";
    out += ", \"baselines\": {";
    bool firstBase = true;
    for (const auto& [label, b] : baselines_) {
        out += firstBase ? "" : ", ";
        firstBase = false;
        out += "\"" + jsonEscape(label) +
               "\": {\"ewma_mean_ns\": " + jsonNum(b.mean) +
               ", \"ewma_sigma_ns\": " + jsonNum(b.sigmaNs()) +
               ", \"samples\": " + std::to_string(b.samples) + "}";
    }
    out += "}";
    out += ", \"ring\": [";
    bool first = true;
    for (const StepDigest& d : ring()) {
        out += first ? "" : ", ";
        first = false;
        out += d.toJson();
    }
    out += "], \"dropped\": " + dropped_.toJson();
    out += ", \"aggregate\": " + aggregate_.toJson();
    out += ", \"anomalies\": [";
    first = true;
    for (const FlightAnomaly& a : anomalies_) {
        out += first ? "" : ", ";
        first = false;
        out += "{\"step\": " + a.digest.toJson() +
               ", \"baseline_ns\": " + jsonNum(a.baselineNs) +
               ", \"sigma_ns\": " + jsonNum(a.sigmaNs) +
               ", \"attribution\": " + a.attributionJson +
               ", \"window\": " + a.windowJson + "}";
    }
    out += "]}\n";
    return out;
}

void
FlightRecorder::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open flight file '" + path +
                        "' for writing");
    }
    f << toJson();
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing flight file '" + path + "'");
    }
}

} // namespace mscclpp::obs
