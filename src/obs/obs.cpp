#include "obs/obs.hpp"

namespace mscclpp::obs {

std::string
ObsContext::dump() const
{
    std::string what;
    if (!traceFile_.empty()) {
        tracer_.writeChromeTrace(traceFile_);
        what += std::to_string(tracer_.size()) + " events -> " +
                traceFile_;
        if (tracer_.dropped() > 0) {
            what += " (" + std::to_string(tracer_.dropped()) +
                    " dropped)";
        }
    }
    if (!metricsFile_.empty()) {
        metrics_.writeJson(metricsFile_);
        if (!what.empty()) {
            what += ", ";
        }
        what += "metrics -> " + metricsFile_;
    }
    return what;
}

} // namespace mscclpp::obs
