#include "obs/obs.hpp"

namespace mscclpp::obs {

std::string
ObsContext::dump()
{
    // Truncation must be visible in the metrics dump too, not only in
    // the trace's otherData: a wrapped ring silently invalidates any
    // critical-path analysis done on the snapshot.
    if (metrics_.enabled() &&
        (tracer_.dropped() > 0 || tracer_.edgesDropped() > 0)) {
        metrics_.counter("trace.dropped").add(tracer_.dropped());
        metrics_.counter("trace.edges_dropped")
            .add(tracer_.edgesDropped());
    }
    std::string what;
    if (!traceFile_.empty()) {
        // Counter tracks from the timeseries ride the trace dump so
        // utilization/occupancy timelines render beside the spans.
        tracer_.writeChromeTrace(traceFile_,
                                 timeseries_.enabled()
                                     ? timeseries_.chromeCounterEvents()
                                     : std::vector<std::string>{});
        what += std::to_string(tracer_.size()) + " events -> " +
                traceFile_;
        if (tracer_.dropped() > 0) {
            what += " (" + std::to_string(tracer_.dropped()) +
                    " dropped)";
        }
    }
    if (!metricsFile_.empty()) {
        metrics_.writeJson(metricsFile_);
        if (!what.empty()) {
            what += ", ";
        }
        what += "metrics -> " + metricsFile_;
    }
    if (flight_.enabled() && !flightFile_.empty()) {
        flight_.writeJson(flightFile_);
        if (!what.empty()) {
            what += ", ";
        }
        what += std::to_string(flight_.steps()) + " steps (" +
                std::to_string(flight_.anomalyCount()) +
                " anomalies) -> " + flightFile_;
    }
    if (timeseries_.enabled() && !timeseriesFile_.empty()) {
        timeseries_.writeJson(timeseriesFile_);
        if (!what.empty()) {
            what += ", ";
        }
        what += std::to_string(timeseries_.samples()) +
                " samples -> " + timeseriesFile_;
    }
    if (simprof_.enabled() && !simprofFile_.empty()) {
        simprof_.writeJson(simprofFile_);
        if (!what.empty()) {
            what += ", ";
        }
        what += std::to_string(simprof_.eventsProfiled()) +
                " profiled events -> " + simprofFile_;
    }
    // Hang reports are exceptional by definition: a clean run writes
    // no hang file at all.
    if (!watchdog_.reports().empty() && !watchdogFile_.empty()) {
        watchdog_.writeJson(watchdogFile_);
        if (!what.empty()) {
            what += ", ";
        }
        what += std::to_string(watchdog_.reports().size()) +
                " hang reports -> " + watchdogFile_;
    }
    return what;
}

} // namespace mscclpp::obs
