#ifndef MSCCLPP_OBS_SIMPROF_HPP
#define MSCCLPP_OBS_SIMPROF_HPP

#include "sim/scheduler.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mscclpp::obs {

/**
 * Host-time self-profiler for the discrete-event core
 * (MSCCLPP_SIMPROF=1): where does the *simulator* spend wall-clock
 * time while it advances virtual time? Every other obs layer profiles
 * the simulated machine; this one profiles the machine doing the
 * simulating — the NPKit discipline turned on our own runtime, and
 * the attribution table any event-queue/coroutine restructure will be
 * judged against (ROADMAP: "Simulator raw speed").
 *
 * It implements sim::DispatchProfiler: the scheduler announces the
 * edges of its dispatch loop and SimProf samples steady_clock once
 * per callback, attributing each inter-sample gap to a bucket —
 * scheduler pop/dispatch overhead, the dispatched closure's *origin
 * label* (stamped at the schedule()/resumeAfter() call site, e.g.
 * "channel.port", "proxy", "gpu.kernel"), or the idle hook. Because
 * every gap lands in exactly one bucket, the buckets sum to the
 * measured wall time by construction; `unattributed` is the share
 * whose events carried no origin label, and the attribution
 * percentage measures labelling coverage, not sampling loss.
 *
 * Host code *between* runs (the serving cluster recomposing batches)
 * is covered by Section scopes, which charge their elapsed time minus
 * whatever the buckets already captured inside — a Section may safely
 * wrap code that re-enters Scheduler::run() without double counting.
 *
 * SimProf only ever reads the host clock and host-side counters: it
 * cannot perturb virtual time, event ordering, or any simulated
 * result (the zero-perturbation test proves dumps are bit-identical
 * with the profiler on or off). Exported as `mscclpp.simprof` v1;
 * queried with tools/simprof_query.
 */
class SimProf : public sim::DispatchProfiler
{
  public:
#ifdef MSCCLPP_NO_OBS
    static constexpr bool kCompiledIn = false;
#else
    static constexpr bool kCompiledIn = true;
#endif

    /** Labels of the scheduler's own overhead buckets. */
    static constexpr const char* kDispatchLabel = "sim.dispatch";
    static constexpr const char* kIdleHookLabel = "sim.idle_hook";

    SimProf() = default;
    ~SimProf() override;
    SimProf(const SimProf&) = delete;
    SimProf& operator=(const SimProf&) = delete;

    bool enabled() const { return kCompiledIn && enabled_; }
    void setEnabled(bool on) { enabled_ = kCompiledIn && on; }

    /** Keep only the K hottest origins in the dump (rest aggregated
     *  into "(other)" with exact totals); 0 keeps all. */
    void setTopK(int k) { topk_ = k < 0 ? 0 : k; }
    int topK() const { return topk_; }

    /**
     * Install on @p sched and start measuring. Also turns on the
     * scheduler's deterministic per-origin event counts so the dump
     * can pair host-ns with event counts per origin. No-op unless
     * enabled.
     */
    void attach(sim::Scheduler& sched);
    void detach();
    bool attached() const { return sched_ != nullptr; }

    // -- sim::DispatchProfiler --------------------------------------------
    void runBegin() override;
    void eventPopped() override;
    void eventDone(const char* origin) override;
    void idleHookBegin() override;
    void idleHookEnd() override;
    void runEnd() override;

    /**
     * Charge host code in the enclosing scope to @p label, minus any
     * time the event/scheduler buckets already captured inside the
     * scope (so wrapping a Scheduler::run() call never double
     * counts). Cheap no-op when the profiler is disabled.
     */
    class Section
    {
      public:
        Section(SimProf& prof, const char* label);
        ~Section();
        Section(const Section&) = delete;
        Section& operator=(const Section&) = delete;

      private:
        SimProf* prof_ = nullptr;
        const char* label_;
        std::uint64_t t0_ = 0;
        std::uint64_t charged0_ = 0;
    };

    // -- introspection (tests, CLI) ---------------------------------------
    /** Total host ns charged into any bucket (== the sum of every
     *  origin/section/scheduler bucket, by construction). */
    std::uint64_t wallMeasuredNs() const { return chargedNs_; }
    std::uint64_t unattributedNs() const;
    std::uint64_t attributedNs() const
    {
        return chargedNs_ - unattributedNs();
    }
    /** 100 when nothing was measured yet. */
    double attributedPct() const;
    std::uint64_t dispatchNs() const { return dispatchNs_; }
    std::uint64_t idleHookNs() const { return idleHookNs_; }
    std::uint64_t runs() const { return runs_; }
    /** Events whose closure bodies this profiler timed. */
    std::uint64_t eventsProfiled() const;
    /** Event-closure copies since attach() (stays 0: dispatch is
     *  move-only — see Scheduler::closureCopies). */
    std::uint64_t closureCopiesSinceAttach() const;

    /** host ns per label, event origins and sections merged by text
     *  (nullptr exported as Scheduler::kUnattributed). */
    std::map<std::string, std::uint64_t> hostNsByLabel() const;

    /** Serialise the `mscclpp.simprof` v1 dump. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws Error on I/O failure. */
    void writeJson(const std::string& path) const;

  private:
    struct Bucket
    {
        std::uint64_t ns = 0;
        std::uint64_t events = 0;
    };

    static std::uint64_t nowNs();
    /** Charge @p ns to the pointer-keyed bucket list @p table (MRU
     *  front slot; the label population is a few dozen). */
    static void charge(
        std::vector<std::pair<const char*, Bucket>>& table,
        const char* label, std::uint64_t ns, std::uint64_t events);

    bool enabled_ = false;
    int topk_ = 0;
    sim::Scheduler* sched_ = nullptr;
    bool inRun_ = false;
    bool sampled_ = false; ///< lastNs_ holds a valid sample
    std::uint64_t lastNs_ = 0;
    std::uint64_t chargedNs_ = 0;
    std::uint64_t dispatchNs_ = 0;
    std::uint64_t idleHookNs_ = 0;
    std::uint64_t idleHookCalls_ = 0;
    std::uint64_t runs_ = 0;
    std::uint64_t copiesAtAttach_ = 0;
    std::uint64_t framesCreatedAtAttach_ = 0;
    std::vector<std::pair<const char*, Bucket>> origins_;
    std::vector<std::pair<const char*, Bucket>> sections_;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_SIMPROF_HPP
