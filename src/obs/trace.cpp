#include "obs/trace.hpp"

#include "core/errors.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

namespace mscclpp::obs {

const char*
toString(Category c)
{
    switch (c) {
      case Category::Collective:
        return "collective";
      case Category::Executor:
        return "executor";
      case Category::Channel:
        return "channel";
      case Category::Proxy:
        return "proxy";
      case Category::Fifo:
        return "fifo";
      case Category::Link:
        return "link";
      case Category::Kernel:
        return "kernel";
      case Category::Step:
        return "step";
      case Category::Request:
        return "request";
    }
    return "?";
}

const char*
toString(EdgeKind k)
{
    switch (k) {
      case EdgeKind::Signal:
        return "signal";
      case EdgeKind::FifoHop:
        return "fifo_hop";
      case EdgeKind::LinkDelivery:
        return "link_delivery";
      case EdgeKind::Launch:
        return "launch";
      case EdgeKind::Dispatch:
        return "dispatch";
    }
    return "?";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{
}

void
Tracer::span(Category cat, std::string name, int pid, std::string track,
             sim::Time begin, sim::Time end, std::uint64_t bytes,
             int channelId, std::string detail)
{
    if (!enabled()) {
        return;
    }
    TraceEvent ev{cat,   std::move(name), pid,       std::move(track),
                  begin, end,             bytes,     channelId,
                  std::move(detail)};
    if (events_.size() < capacity_) {
        events_.push_back(std::move(ev));
    } else {
        events_[head_] = std::move(ev);
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }
}

void
Tracer::edge(EdgeKind kind, int srcPid, std::string srcTrack,
             sim::Time srcTime, int dstPid, std::string dstTrack,
             sim::Time dstTime, std::uint64_t bytes, int channelId)
{
    if (!enabled()) {
        return;
    }
    TraceEdge e{kind,   srcPid,  std::move(srcTrack), srcTime, dstPid,
                std::move(dstTrack), dstTime, bytes,  channelId};
    if (edges_.size() < capacity_) {
        edges_.push_back(std::move(e));
    } else {
        edges_[edgeHead_] = std::move(e);
        edgeHead_ = (edgeHead_ + 1) % capacity_;
        ++edgesDropped_;
    }
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
        out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
}

std::vector<TraceEdge>
Tracer::edgesSnapshot() const
{
    std::vector<TraceEdge> out;
    out.reserve(edges_.size());
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        out.push_back(edges_[(edgeHead_ + i) % edges_.size()]);
    }
    return out;
}

std::vector<TraceEvent>
Tracer::snapshotWindow(sim::Time from, sim::Time to) const
{
    std::vector<TraceEvent> out;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const TraceEvent& ev = events_[(head_ + i) % events_.size()];
        if (ev.begin >= from && ev.end <= to) {
            out.push_back(ev);
        }
    }
    return out;
}

std::vector<TraceEdge>
Tracer::edgesSnapshotWindow(sim::Time from, sim::Time to) const
{
    std::vector<TraceEdge> out;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        const TraceEdge& e = edges_[(edgeHead_ + i) % edges_.size()];
        if (e.dstTime >= from && e.dstTime <= to) {
            out.push_back(e);
        }
    }
    return out;
}

void
Tracer::clear()
{
    events_.clear();
    head_ = 0;
    dropped_ = 0;
    edges_.clear();
    edgeHead_ = 0;
    edgesDropped_ = 0;
}

namespace {

/** Minimal JSON string escaping (names and tracks are library-made,
 *  but env-provided paths etc. must not break the file). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
processLabel(int pid)
{
    if (pid == kHostPid) {
        return "host";
    }
    if (pid == kFabricPid) {
        return "fabric";
    }
    if (pid == kRequestPid) {
        return "requests";
    }
    return "device" + std::to_string(pid);
}

std::string
fmtUs(sim::Time t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", sim::toUs(t));
    return buf;
}

} // namespace

std::string
Tracer::chromeTraceJson(const std::vector<std::string>& extraEvents) const
{
    // Deterministic (pid, track) -> tid assignment: tracks sort
    // lexicographically within their process, so the same workload
    // yields byte-identical metadata regardless of which track
    // happened to record first (stable diffs across runs, stable
    // committed fixtures).
    std::map<std::pair<int, std::string>, int> tids;
    std::vector<TraceEvent> events = snapshot();
    for (const TraceEvent& ev : events) {
        tids.emplace(std::make_pair(ev.pid, ev.track), 0);
    }
    {
        int pid = 0;
        int next = 0;
        for (auto& [key, tid] : tids) {
            if (key.first != pid) {
                pid = key.first;
                next = 0;
            }
            tid = next++;
        }
    }

    std::string out = "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
                      "\"dropped\":" +
                      std::to_string(dropped_) +
                      ",\"edges_dropped\":" + std::to_string(edgesDropped_) +
                      ",\"edges\":" + std::to_string(edges_.size()) +
                      "},\"traceEvents\":[";
    bool first = true;
    auto emit = [&out, &first](const std::string& obj) {
        if (!first) {
            out += ',';
        }
        first = false;
        out += '\n';
        out += obj;
    };

    std::map<int, bool> namedPids;
    for (const auto& [key, tid] : tids) {
        if (!namedPids[key.first]) {
            namedPids[key.first] = true;
            emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                 std::to_string(key.first) +
                 ",\"args\":{\"name\":\"" +
                 jsonEscape(processLabel(key.first)) + "\"}}");
            // Devices first, pseudo-processes (host, fabric, requests)
            // after, in a fixed order the viewer honours.
            emit("{\"name\":\"process_sort_index\",\"ph\":\"M\","
                 "\"pid\":" +
                 std::to_string(key.first) +
                 ",\"args\":{\"sort_index\":" +
                 std::to_string(key.first) + "}}");
        }
        emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(key.first) + ",\"tid\":" +
             std::to_string(tid) + ",\"args\":{\"name\":\"" +
             jsonEscape(key.second) + "\"}}");
    }
    if (dropped_ > 0) {
        // Surface truncation inside the viewer too, not only in
        // otherData: analysis on a wrapped ring is unsound.
        emit("{\"name\":\"trace.dropped\",\"ph\":\"M\",\"pid\":" +
             std::to_string(kHostPid) + ",\"args\":{\"count\":" +
             std::to_string(dropped_) + "}}");
    }

    for (const TraceEvent& ev : events) {
        int tid = tids[std::make_pair(ev.pid, ev.track)];
        std::string obj = "{\"name\":\"" + jsonEscape(ev.name) +
                          "\",\"cat\":\"" + toString(ev.cat) +
                          "\",\"ph\":\"X\",\"pid\":" +
                          std::to_string(ev.pid) +
                          ",\"tid\":" + std::to_string(tid) +
                          ",\"ts\":" + fmtUs(ev.begin) +
                          ",\"dur\":" + fmtUs(ev.end - ev.begin) +
                          ",\"args\":{";
        obj += "\"bytes\":" + std::to_string(ev.bytes);
        if (ev.channelId >= 0) {
            obj += ",\"channel\":" + std::to_string(ev.channelId);
        }
        if (!ev.detail.empty()) {
            obj += ",\"detail\":\"" + jsonEscape(ev.detail) + "\"";
        }
        obj += "}}";
        emit(obj);
    }
    for (const std::string& ev : extraEvents) {
        emit(ev);
    }
    out += "\n]}\n";
    return out;
}

void
Tracer::writeChromeTrace(const std::string& path,
                         const std::vector<std::string>& extraEvents) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open trace file '" + path + "' for writing");
    }
    f << chromeTraceJson(extraEvents);
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing trace file '" + path + "'");
    }
}

} // namespace mscclpp::obs
