#include "obs/simprof.hpp"

#include "core/errors.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mscclpp::obs {

SimProf::~SimProf()
{
    detach();
}

std::uint64_t
SimProf::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
SimProf::charge(std::vector<std::pair<const char*, Bucket>>& table,
                const char* label, std::uint64_t ns,
                std::uint64_t events)
{
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i].first == label) {
            table[i].second.ns += ns;
            table[i].second.events += events;
            if (i != 0) {
                std::swap(table[i], table[i - 1]);
            }
            return;
        }
    }
    table.emplace_back(label, Bucket{ns, events});
}

void
SimProf::attach(sim::Scheduler& sched)
{
    if (!enabled() || sched_ != nullptr) {
        return;
    }
    sched_ = &sched;
    sched_->setDispatchProfiler(this);
    sched_->enableOriginCounts(true);
    copiesAtAttach_ = sim::Scheduler::closureCopies();
    framesCreatedAtAttach_ = sim::frameStats().created;
    sampled_ = false;
}

void
SimProf::detach()
{
    if (sched_ != nullptr) {
        if (sched_->dispatchProfiler() == this) {
            sched_->setDispatchProfiler(nullptr);
        }
        sched_ = nullptr;
    }
}

void
SimProf::runBegin()
{
    ++runs_;
    inRun_ = true;
    lastNs_ = nowNs();
    sampled_ = true;
}

void
SimProf::eventPopped()
{
    const std::uint64_t t = nowNs();
    if (inRun_ && sampled_) {
        // Gap since the last sample: loop bookkeeping + heap pop.
        dispatchNs_ += t - lastNs_;
        chargedNs_ += t - lastNs_;
    }
    lastNs_ = t;
    sampled_ = true;
}

void
SimProf::eventDone(const char* origin)
{
    if (!sampled_) {
        return;
    }
    const std::uint64_t t = nowNs();
    charge(origins_, origin, t - lastNs_, 1);
    chargedNs_ += t - lastNs_;
    lastNs_ = t;
}

void
SimProf::idleHookBegin()
{
    const std::uint64_t t = nowNs();
    if (sampled_) {
        dispatchNs_ += t - lastNs_;
        chargedNs_ += t - lastNs_;
    }
    lastNs_ = t;
    sampled_ = true;
}

void
SimProf::idleHookEnd()
{
    const std::uint64_t t = nowNs();
    if (sampled_) {
        idleHookNs_ += t - lastNs_;
        chargedNs_ += t - lastNs_;
        ++idleHookCalls_;
    }
    lastNs_ = t;
}

void
SimProf::runEnd()
{
    const std::uint64_t t = nowNs();
    if (inRun_ && sampled_) {
        dispatchNs_ += t - lastNs_;
        chargedNs_ += t - lastNs_;
    }
    lastNs_ = t;
    inRun_ = false;
}

SimProf::Section::Section(SimProf& prof, const char* label)
    : label_(label)
{
    if (!prof.enabled()) {
        return;
    }
    prof_ = &prof;
    t0_ = nowNs();
    charged0_ = prof.chargedNs_;
}

SimProf::Section::~Section()
{
    if (prof_ == nullptr) {
        return;
    }
    const std::uint64_t elapsed = nowNs() - t0_;
    // Whatever the dispatch buckets captured inside this scope is
    // already charged; only the remainder belongs to the section.
    const std::uint64_t inner = prof_->chargedNs_ - charged0_;
    const std::uint64_t extra = elapsed > inner ? elapsed - inner : 0;
    charge(prof_->sections_, label_, extra, 1);
    prof_->chargedNs_ += extra;
}

std::uint64_t
SimProf::unattributedNs() const
{
    for (const auto& [label, b] : origins_) {
        if (label == nullptr) {
            return b.ns;
        }
    }
    return 0;
}

double
SimProf::attributedPct() const
{
    if (chargedNs_ == 0) {
        return 100.0;
    }
    return 100.0 *
           static_cast<double>(attributedNs()) /
           static_cast<double>(chargedNs_);
}

std::uint64_t
SimProf::eventsProfiled() const
{
    std::uint64_t n = 0;
    for (const auto& [label, b] : origins_) {
        n += b.events;
    }
    return n;
}

std::uint64_t
SimProf::closureCopiesSinceAttach() const
{
    return sim::Scheduler::closureCopies() - copiesAtAttach_;
}

std::map<std::string, std::uint64_t>
SimProf::hostNsByLabel() const
{
    std::map<std::string, std::uint64_t> merged;
    for (const auto& [label, b] : origins_) {
        merged[label != nullptr ? label
                                : sim::Scheduler::kUnattributed] += b.ns;
    }
    for (const auto& [label, b] : sections_) {
        merged[label] += b.ns;
    }
    if (dispatchNs_ > 0) {
        merged[kDispatchLabel] += dispatchNs_;
    }
    if (idleHookNs_ > 0) {
        merged[kIdleHookLabel] += idleHookNs_;
    }
    return merged;
}

namespace {

/** Labels are our own dotted literals, but a malformed one must not
 *  corrupt the dump. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

struct Row
{
    std::string label;
    std::string kind;
    std::uint64_t ns = 0;
    std::uint64_t events = 0;
};

void
appendRow(std::ostringstream& out, const Row& r, std::uint64_t totalNs,
          bool& first)
{
    if (!first) {
        out << ",";
    }
    first = false;
    const double pct =
        totalNs > 0
            ? 100.0 * static_cast<double>(r.ns) / static_cast<double>(totalNs)
            : 0.0;
    char pctBuf[32];
    std::snprintf(pctBuf, sizeof(pctBuf), "%.3f", pct);
    out << "\n  {\"origin\": \"" << jsonEscape(r.label)
        << "\", \"kind\": \""
        << r.kind << "\", \"events\": " << r.events
        << ", \"host_ns\": " << r.ns << ", \"pct\": " << pctBuf << "}";
}

} // namespace

std::string
SimProf::toJson() const
{
    // Merge by label text: the same literal may have distinct
    // addresses across translation units.
    std::map<std::string, Bucket> eventRows;
    for (const auto& [label, b] : origins_) {
        Bucket& r = eventRows[label != nullptr
                                  ? label
                                  : sim::Scheduler::kUnattributed];
        r.ns += b.ns;
        r.events += b.events;
    }
    std::map<std::string, Bucket> sectionRows;
    for (const auto& [label, b] : sections_) {
        Bucket& r = sectionRows[label];
        r.ns += b.ns;
        r.events += b.events;
    }

    std::vector<Row> rows;
    for (const auto& [label, b] : eventRows) {
        rows.push_back(Row{label, "event", b.ns, b.events});
    }
    for (const auto& [label, b] : sectionRows) {
        rows.push_back(Row{label, "section", b.ns, b.events});
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) {
                         return a.ns != b.ns ? a.ns > b.ns
                                             : a.label < b.label;
                     });

    // Top-K folding: keep the K hottest rows, fold the rest into one
    // "(other)" aggregate so the totals stay exact. The unattributed
    // row always survives — the coverage gate reads it.
    if (topk_ > 0 && rows.size() > static_cast<std::size_t>(topk_)) {
        std::vector<Row> kept;
        Row other{"(other)", "other", 0, 0};
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (i < static_cast<std::size_t>(topk_) ||
                rows[i].label == sim::Scheduler::kUnattributed) {
                kept.push_back(rows[i]);
            } else {
                other.ns += rows[i].ns;
                other.events += rows[i].events;
            }
        }
        if (other.events > 0 || other.ns > 0) {
            kept.push_back(other);
        }
        rows = std::move(kept);
    }

    const std::uint64_t wall = chargedNs_;
    const std::uint64_t unattr = unattributedNs();
    char pctBuf[32];
    std::snprintf(pctBuf, sizeof(pctBuf), "%.3f", attributedPct());
    const double wallSec = static_cast<double>(wall) / 1e9;
    char epsBuf[32];
    std::snprintf(epsBuf, sizeof(epsBuf), "%.1f",
                  wallSec > 0
                      ? static_cast<double>(eventsProfiled()) / wallSec
                      : 0.0);

    const sim::FrameStats& frames = sim::frameStats();

    std::ostringstream out;
    out << "{\n";
    out << "\"schema\": \"mscclpp.simprof\",\n";
    out << "\"version\": 1,\n";
    out << "\"wall_measured_ns\": " << wall << ",\n";
    out << "\"attributed_ns\": " << (wall - unattr) << ",\n";
    out << "\"unattributed_ns\": " << unattr << ",\n";
    out << "\"attributed_pct\": " << pctBuf << ",\n";
    out << "\"runs\": " << runs_ << ",\n";
    out << "\"events_profiled\": " << eventsProfiled() << ",\n";
    out << "\"events_per_sec\": " << epsBuf << ",\n";
    out << "\"dispatch_closure_copies\": " << closureCopiesSinceAttach()
        << ",\n";
    out << "\"scheduler\": {\"dispatch_ns\": " << dispatchNs_
        << ", \"idle_hook_ns\": " << idleHookNs_
        << ", \"idle_hook_calls\": " << idleHookCalls_ << "},\n";
    out << "\"frames\": {\"created\": "
        << (frames.created - framesCreatedAtAttach_)
        << ", \"live\": " << frames.live << ", \"peak\": " << frames.peak
        << "},\n";
    out << "\"events_total\": "
        << (sched_ != nullptr ? sched_->eventsProcessed() : 0) << ",\n";
    out << "\"max_queue_depth\": "
        << (sched_ != nullptr ? sched_->maxQueueDepth() : 0) << ",\n";
    out << "\"events_by_origin\": {";
    if (sched_ != nullptr) {
        bool firstCount = true;
        for (const auto& [label, count] :
             sched_->originCountsByName()) {
            if (!firstCount) {
                out << ", ";
            }
            firstCount = false;
            out << "\"" << jsonEscape(label) << "\": " << count;
        }
    }
    out << "},\n";
    out << "\"origins\": [";
    bool first = true;
    for (const Row& r : rows) {
        appendRow(out, r, wall, first);
    }
    out << (first ? "]" : "\n]") << "\n}\n";
    return out.str();
}

void
SimProf::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open simprof file '" + path +
                        "' for writing");
    }
    f << toJson();
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing simprof file '" + path + "'");
    }
}

} // namespace mscclpp::obs
