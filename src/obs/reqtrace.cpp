#include "obs/reqtrace.hpp"

#include "core/errors.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

namespace mscclpp::obs {

const char*
toString(ReqPhase p)
{
    switch (p) {
      case ReqPhase::Queued:
        return "queued";
      case ReqPhase::Prefill:
        return "prefill";
      case ReqPhase::Recompute:
        return "recompute";
      case ReqPhase::Decode:
        return "decode";
      case ReqPhase::Migration:
        return "kv_migration";
      case ReqPhase::PreemptWait:
        return "preempt_wait";
    }
    return "?";
}

const char*
toString(ReqCategory c)
{
    switch (c) {
      case ReqCategory::QueueWait:
        return "queue_wait";
      case ReqCategory::PrefillCompute:
        return "prefill_compute";
      case ReqCategory::DecodeCompute:
        return "decode_compute";
      case ReqCategory::ExposedComms:
        return "exposed_comms";
      case ReqCategory::SyncWait:
        return "sync_wait";
      case ReqCategory::PreemptionLost:
        return "preemption_lost";
      case ReqCategory::KvMigration:
        return "kv_migration";
    }
    return "?";
}

sim::Time
RequestTrace::ttftBucket(ReqCategory c) const
{
    auto it = ttftBuckets.find(c);
    return it == ttftBuckets.end() ? 0 : it->second;
}

sim::Time
RequestTrace::e2eBucket(ReqCategory c) const
{
    auto it = e2eBuckets.find(c);
    return it == e2eBuckets.end() ? 0 : it->second;
}

namespace {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

/** Picosecond-exact nanosecond rendering (x/1000 with three decimals),
 *  so the dump's bucket sums reconcile as tightly as the in-memory
 *  picosecond values do. */
std::string
fmtNs(sim::Time t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(t / 1000),
                  static_cast<unsigned long long>(t % 1000));
    return buf;
}

/** The bucket a span's whole duration falls into when it carries no
 *  usable step attribution. */
ReqCategory
primaryCategory(const RequestSpan& sp)
{
    switch (sp.phase) {
      case ReqPhase::Queued:
        return ReqCategory::QueueWait;
      case ReqPhase::Prefill:
        return ReqCategory::PrefillCompute;
      case ReqPhase::Recompute:
        return ReqCategory::PreemptionLost;
      case ReqPhase::Decode:
        return ReqCategory::DecodeCompute;
      case ReqPhase::Migration:
        return ReqCategory::KvMigration;
      case ReqPhase::PreemptWait:
        return ReqCategory::PreemptionLost;
    }
    return ReqCategory::QueueWait;
}

/** True when the span's step attribution can be reused verbatim: the
 *  step's reconciled latency is exactly the span duration (always the
 *  case for the serving step engine, which sets end = begin +
 *  measured). */
bool
attributionUsable(const RequestSpan& sp)
{
    return !sp.stepBuckets.empty() &&
           sp.stepMeasured == sp.end - sp.begin &&
           (sp.phase == ReqPhase::Prefill || sp.phase == ReqPhase::Decode);
}

sim::Time
stepBucketOf(const RequestSpan& sp, StepCategory c)
{
    auto it = sp.stepBuckets.find(c);
    return it == sp.stepBuckets.end() ? 0 : it->second;
}

/** Critical-path communication cost the span put on the request. */
sim::Time
commCostOf(const RequestSpan& sp)
{
    if (!attributionUsable(sp)) {
        return 0;
    }
    return stepBucketOf(sp, StepCategory::ExposedComms) +
           stepBucketOf(sp, StepCategory::SyncWait) +
           stepBucketOf(sp, StepCategory::ProxyHop) +
           stepBucketOf(sp, StepCategory::Launch);
}

/**
 * Add the span's [begin, min(end, clip)) slice to @p buckets. A full
 * span splits along its step attribution (which sums exactly to the
 * span duration); a clipped or unattributed slice lands whole in the
 * phase's primary bucket. Either way the contribution equals the
 * slice duration, so summing over a contiguous span list reconciles
 * exactly with the wall interval it covers.
 */
void
addSpan(const RequestSpan& sp, sim::Time clip,
        std::map<ReqCategory, sim::Time>& buckets)
{
    if (sp.begin >= clip) {
        return;
    }
    const sim::Time end = std::min(sp.end, clip);
    const sim::Time dur = end - sp.begin;
    if (dur == 0) {
        return;
    }
    if (end != sp.end || !attributionUsable(sp)) {
        buckets[primaryCategory(sp)] += dur;
        return;
    }
    const ReqCategory computeCat = sp.phase == ReqPhase::Prefill
                                       ? ReqCategory::PrefillCompute
                                       : ReqCategory::DecodeCompute;
    buckets[computeCat] += stepBucketOf(sp, StepCategory::Compute) +
                           stepBucketOf(sp, StepCategory::OverlapSlack);
    buckets[ReqCategory::ExposedComms] +=
        stepBucketOf(sp, StepCategory::ExposedComms) +
        stepBucketOf(sp, StepCategory::ProxyHop) +
        stepBucketOf(sp, StepCategory::Launch);
    buckets[ReqCategory::SyncWait] +=
        stepBucketOf(sp, StepCategory::SyncWait);
}

} // namespace

std::string
RequestTrace::toJson() const
{
    std::string out = "{\"id\": " + std::to_string(id) +
                      ", \"replica\": " + std::to_string(replica) +
                      ", \"arrival_ns\": " + fmtNs(arrival) +
                      ", \"first_token_ns\": " + fmtNs(firstToken) +
                      ", \"completed_ns\": " + fmtNs(completed) +
                      ", \"ttft_ns\": " + fmtNs(ttft()) +
                      ", \"e2e_ns\": " + fmtNs(e2e()) +
                      ", \"preemptions\": " + std::to_string(preemptions) +
                      ", \"decode_steps\": " + std::to_string(decodeSteps);
    for (const char* which : {"ttft_buckets_ns", "e2e_buckets_ns"}) {
        const auto& b = which[0] == 't' ? ttftBuckets : e2eBuckets;
        out += std::string(", \"") + which + "\": {";
        bool first = true;
        for (ReqCategory c : kReqCategories) {
            out += first ? "" : ", ";
            first = false;
            auto it = b.find(c);
            out += std::string("\"") + toString(c) +
                   "\": " + fmtNs(it == b.end() ? 0 : it->second);
        }
        out += "}";
    }
    out += ", \"blame\": {\"replica\": " + std::to_string(blame.replica) +
           ", \"step\": \"" + jsonEscape(blame.step) +
           "\", \"at_ns\": " + fmtNs(blame.at) + ", \"collective\": \"" +
           jsonEscape(blame.collective) + "\", \"link\": \"" +
           jsonEscape(blame.link) + "\", \"category\": \"" +
           toString(blame.category) +
           "\", \"cost_ns\": " + fmtNs(blame.cost) + "}";
    out += ", \"spans\": [";
    bool first = true;
    for (const RequestSpan& sp : spans) {
        out += first ? "" : ", ";
        first = false;
        out += std::string("{\"phase\": \"") + toString(sp.phase) +
               "\", \"begin_ns\": " + fmtNs(sp.begin) +
               ", \"end_ns\": " + fmtNs(sp.end) +
               ", \"replica\": " + std::to_string(sp.replica) +
               ", \"label\": \"" + jsonEscape(sp.label) +
               "\", \"collective\": \"" + jsonEscape(sp.collective) +
               "\", \"link\": \"" + jsonEscape(sp.link) +
               "\", \"bytes\": " + std::to_string(sp.bytes) + "}";
    }
    out += "]}";
    return out;
}

RequestTrace&
RequestTracer::open(int id)
{
    RequestTrace& t = open_[id];
    t.id = id;
    return t;
}

void
RequestTracer::onArrival(int id, sim::Time at)
{
    if (!enabled()) {
        return;
    }
    RequestTrace& t = open(id);
    t.arrival = at;
    ++observed_;
}

void
RequestTracer::onPhase(int id, ReqPhase phase, sim::Time begin,
                       sim::Time end, int replica, std::string label,
                       const StepAttribution* att)
{
    if (!enabled()) {
        return;
    }
    RequestTrace& t = open(id);
    RequestSpan sp;
    sp.phase = phase;
    sp.begin = begin;
    sp.end = end;
    sp.replica = replica;
    sp.label = std::move(label);
    if (att != nullptr) {
        sp.collective = att->dominantCollective;
        sp.link = att->culpritLink;
        sp.stragglerRank = att->stragglerRank;
        sp.stepMeasured = att->measured;
        sp.stepBuckets = att->buckets;
    }
    if (phase == ReqPhase::Decode) {
        t.decodeSteps++;
    }
    t.spans.push_back(std::move(sp));
}

void
RequestTracer::onMigration(int id, sim::Time begin, sim::Time end,
                           int from, int to, std::uint64_t bytes)
{
    if (!enabled()) {
        return;
    }
    RequestTrace& t = open(id);
    RequestSpan sp;
    sp.phase = ReqPhase::Migration;
    sp.begin = begin;
    sp.end = end;
    sp.replica = to;
    sp.label = "kv r" + std::to_string(from) + "->r" + std::to_string(to);
    sp.bytes = bytes;
    t.spans.push_back(std::move(sp));
    ++migrations_;
}

void
RequestTracer::onPreempted(int id, sim::Time at, int replica)
{
    if (!enabled()) {
        return;
    }
    (void)replica;
    RequestTrace& t = open(id);
    t.preemptions++;
    t.preemptedAt.push_back(at);
    ++preemptionEvents_;
}

void
RequestTracer::onDone(int id, sim::Time firstToken, sim::Time completed,
                      int replica)
{
    if (!enabled()) {
        return;
    }
    RequestTrace& t = open(id);
    t.firstToken = firstToken;
    t.completed = completed;
    t.replica = replica;
    t.done = true;
    finalize(t);
    ++completed_;
    retain(std::move(t));
    open_.erase(id);
}

void
RequestTracer::onDropped(int id, sim::Time at, int replica)
{
    if (!enabled()) {
        return;
    }
    RequestTrace& t = open(id);
    t.completed = at;
    t.replica = replica;
    t.dropped = true;
    ++dropped_;
    open_.erase(id);
}

void
RequestTracer::noteFault(int replica, std::string link, sim::Time at)
{
    if (!enabled()) {
        return;
    }
    faults_.push_back(FaultStamp{replica, std::move(link), at});
}

/**
 * Turn the recorded phase spans into a contiguous tree over
 * [arrival, completed] and fold it into the exact bucket splits.
 *
 * Every gap between recorded spans is synthesised as a wait: plain
 * queueing normally, preemption recovery once an eviction marker has
 * passed (cleared when the recompute prefill lands). Each span then
 * contributes exactly its duration to the buckets — phase spans split
 * along their step attribution, waits land whole — so the e2e buckets
 * sum to completed - arrival and the TTFT buckets (the same walk
 * clipped at firstToken) to firstToken - arrival, to the picosecond.
 */
void
RequestTracer::finalize(RequestTrace& t)
{
    std::stable_sort(t.spans.begin(), t.spans.end(),
                     [](const RequestSpan& a, const RequestSpan& b) {
                         return a.begin < b.begin;
                     });
    std::vector<sim::Time> marks = t.preemptedAt;
    std::sort(marks.begin(), marks.end());

    std::vector<RequestSpan> tree;
    tree.reserve(t.spans.size() * 2);
    sim::Time cursor = t.arrival;
    bool recovering = false;
    std::size_t mi = 0;
    auto wait = [&](sim::Time upTo) {
        // Consume eviction markers inside the gap: queueing before the
        // marker, preemption recovery after it.
        while (mi < marks.size() && marks[mi] <= upTo) {
            if (marks[mi] > cursor && !recovering) {
                RequestSpan w;
                w.phase = ReqPhase::Queued;
                w.begin = cursor;
                w.end = marks[mi];
                tree.push_back(w);
                cursor = marks[mi];
            }
            recovering = true;
            ++mi;
        }
        if (upTo > cursor) {
            RequestSpan w;
            w.phase = recovering ? ReqPhase::PreemptWait
                                 : ReqPhase::Queued;
            w.begin = cursor;
            w.end = upTo;
            tree.push_back(w);
            cursor = upTo;
        }
    };
    for (RequestSpan& sp : t.spans) {
        wait(sp.begin);
        if (sp.phase == ReqPhase::Prefill && recovering) {
            sp.phase = ReqPhase::Recompute;
        }
        if (sp.phase == ReqPhase::Prefill ||
            sp.phase == ReqPhase::Recompute) {
            recovering = false;
        }
        cursor = std::max(cursor, sp.end);
        tree.push_back(std::move(sp));
    }
    wait(t.completed);
    t.spans = std::move(tree);

    t.ttftBuckets.clear();
    t.e2eBuckets.clear();
    for (ReqCategory c : kReqCategories) {
        t.ttftBuckets[c] = 0;
        t.e2eBuckets[c] = 0;
    }
    for (const RequestSpan& sp : t.spans) {
        addSpan(sp, t.completed, t.e2eBuckets);
        addSpan(sp, t.firstToken, t.ttftBuckets);
    }

    // Blame: aggregate critical-path communication cost per culprit
    // link over the whole request — a degraded link that taxes every
    // decode step a little outweighs one expensive prefill — then
    // report the costliest link's worst span as the chain's anchor.
    // With no traced comm anywhere, fall back to the longest span.
    struct LinkAgg
    {
        sim::Time cost = 0;
        sim::Time sync = 0;
        const RequestSpan* top = nullptr;
        sim::Time topCost = 0;
    };
    std::map<std::string, LinkAgg> byLink;
    for (const RequestSpan& sp : t.spans) {
        const sim::Time cost = commCostOf(sp);
        if (cost == 0) {
            continue;
        }
        LinkAgg& agg = byLink[sp.link];
        agg.cost += cost;
        agg.sync += stepBucketOf(sp, StepCategory::SyncWait);
        if (agg.top == nullptr || cost > agg.topCost) {
            agg.top = &sp;
            agg.topCost = cost;
        }
    }
    const LinkAgg* worstAgg = nullptr;
    for (const auto& [link, agg] : byLink) {
        if (worstAgg == nullptr || agg.cost > worstAgg->cost) {
            worstAgg = &agg;
        }
    }
    if (worstAgg != nullptr) {
        const RequestSpan& sp = *worstAgg->top;
        t.blame.replica = sp.replica;
        t.blame.step = sp.label;
        t.blame.at = sp.begin;
        t.blame.collective = sp.collective;
        t.blame.link = sp.link;
        t.blame.category = worstAgg->sync * 2 > worstAgg->cost
                               ? ReqCategory::SyncWait
                               : ReqCategory::ExposedComms;
        t.blame.cost = worstAgg->cost;
    } else {
        const RequestSpan* longest = nullptr;
        for (const RequestSpan& sp : t.spans) {
            if (longest == nullptr ||
                sp.end - sp.begin > longest->end - longest->begin) {
                longest = &sp;
            }
        }
        if (longest != nullptr) {
            t.blame.replica = longest->replica;
            t.blame.step = longest->label;
            t.blame.at = longest->begin;
            t.blame.collective = longest->collective;
            t.blame.link = longest->link;
            t.blame.category = primaryCategory(*longest);
            t.blame.cost = longest->end - longest->begin;
        }
    }
}

void
RequestTracer::retain(RequestTrace&& t)
{
    auto insert = [this](std::vector<RequestTrace>& v,
                         const RequestTrace& tr, sim::Time key,
                         auto keyOf) {
        auto pos = std::find_if(v.begin(), v.end(),
                                [&](const RequestTrace& o) {
                                    return keyOf(o) < key;
                                });
        v.insert(pos, tr);
        if (static_cast<int>(v.size()) > topK_) {
            v.pop_back();
        }
    };
    insert(worstTtft_, t, t.ttft(),
           [](const RequestTrace& o) { return o.ttft(); });
    insert(worstE2e_, t, t.e2e(),
           [](const RequestTrace& o) { return o.e2e(); });
}

const std::vector<RequestTrace>&
RequestTracer::exemplars(const std::string& cls) const
{
    if (cls == "ttft") {
        return worstTtft_;
    }
    if (cls == "e2e") {
        return worstE2e_;
    }
    throw Error(ErrorCode::InvalidUsage,
                "unknown SLO class '" + cls + "' (use ttft or e2e)");
}

const RequestTrace*
RequestTracer::find(int id) const
{
    for (const std::vector<RequestTrace>* v : {&worstE2e_, &worstTtft_}) {
        for (const RequestTrace& t : *v) {
            if (t.id == id) {
                return &t;
            }
        }
    }
    return nullptr;
}

std::string
RequestTracer::toJson() const
{
    std::string out = "{\n  \"schema\": \"mscclpp.reqtrace\",\n"
                      "  \"version\": 1,\n";
    out += "  \"topk\": " + std::to_string(topK_) + ",\n";
    out += "  \"requests_observed\": " + std::to_string(observed_) + ",\n";
    out +=
        "  \"requests_completed\": " + std::to_string(completed_) + ",\n";
    out += "  \"requests_dropped\": " + std::to_string(dropped_) + ",\n";
    out += "  \"preemption_events\": " +
           std::to_string(preemptionEvents_) + ",\n";
    out += "  \"kv_migrations\": " + std::to_string(migrations_) + ",\n";
    out += "  \"faults\": [";
    bool first = true;
    for (const FaultStamp& f : faults_) {
        out += first ? "" : ", ";
        first = false;
        out += "{\"replica\": " + std::to_string(f.replica) +
               ", \"link\": \"" + jsonEscape(f.link) +
               "\", \"at_ns\": " + fmtNs(f.at) + "}";
    }
    out += "],\n  \"classes\": {\n";
    const char* clsNames[] = {"ttft", "e2e"};
    const std::vector<RequestTrace>* clsVecs[] = {&worstTtft_,
                                                  &worstE2e_};
    for (int i = 0; i < 2; ++i) {
        out += std::string("    \"") + clsNames[i] + "\": [";
        first = true;
        for (const RequestTrace& t : *clsVecs[i]) {
            out += first ? "\n      " : ",\n      ";
            first = false;
            out += t.toJson();
        }
        out += first ? "]" : "\n    ]";
        out += i == 0 ? ",\n" : "\n";
    }
    out += "  }\n}\n";
    return out;
}

void
RequestTracer::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open reqtrace file '" + path +
                        "' for writing");
    }
    f << toJson();
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing reqtrace file '" + path + "'");
    }
}

} // namespace mscclpp::obs
