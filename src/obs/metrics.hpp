#ifndef MSCCLPP_OBS_METRICS_HPP
#define MSCCLPP_OBS_METRICS_HPP

#include "sim/time.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mscclpp::obs {

/** Named monotonic counter (bytes moved, requests served, ...). */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Point-in-time level (queue depth, outstanding requests, ...): the
 * last set value plus the high-water mark. Unlike a Counter it can go
 * down; unlike a Summary it has no distribution — it answers "how
 * deep is it now / how deep did it ever get".
 */
class Gauge
{
  public:
    void set(double v)
    {
        value_ = v;
        if (!seen_ || v > max_) {
            max_ = v;
        }
        seen_ = true;
    }

    void add(double d) { set(value_ + d); }
    void sub(double d) { set(value_ - d); }

    double value() const { return value_; }
    double max() const { return seen_ ? max_ : 0.0; }
    bool empty() const { return !seen_; }

    /**
     * Fold @p other into this gauge for cross-registry aggregation:
     * current levels add (two machines' queues are both outstanding),
     * high-water marks take the max.
     */
    void merge(const Gauge& other)
    {
        if (other.seen_) {
            value_ += other.value_;
            max_ = seen_ ? std::max(max_, other.max_) : other.max_;
            seen_ = true;
        }
    }

  private:
    double value_ = 0.0;
    double max_ = 0.0;
    bool seen_ = false;
};

/**
 * Time-bucketed occupancy histogram: virtual time is divided into
 * fixed-width buckets and addRange() spreads a busy window across the
 * buckets it overlaps. bucket value / bucket width is the busy
 * fraction of that slice — per-link utilisation over time, FIFO
 * residency, switch contention.
 *
 * The bucket width adapts: when the bucket count would exceed a cap
 * the width doubles and adjacent buckets coalesce, so the JSON dump
 * stays bounded no matter how long the simulation ran. Widths only
 * ever double, which keeps merges of differently-sized histograms
 * exact (the coarser width always tiles the finer one).
 */
class Histogram
{
  public:
    explicit Histogram(sim::Time bucketWidth = kDefaultWidth);

    /** Charge the busy window [@p begin, @p end) weighted by
     *  @p weight (1.0 = one fully-occupied resource). */
    void addRange(sim::Time begin, sim::Time end, double weight = 1.0);

    sim::Time bucketWidth() const { return width_; }

    /** bucket index -> busy picoseconds charged to that bucket. */
    const std::map<std::uint64_t, double>& buckets() const
    {
        return buckets_;
    }

    /** Total busy time charged (picoseconds, weighted). */
    double total() const { return total_; }

    /** Busy fraction of bucket @p idx in [0, weight]. */
    double occupancy(std::uint64_t idx) const;

    /** Largest busy fraction over all buckets. */
    double peakOccupancy() const;

    /** Fold @p other in, rebucketing the finer histogram into the
     *  coarser width (widths are power-of-two multiples). */
    void merge(const Histogram& other);

  private:
    static constexpr sim::Time kDefaultWidth = 100'000'000; ///< 100 us
    static constexpr std::size_t kMaxBuckets = 512;

    void coarsen();

    sim::Time width_;
    std::map<std::uint64_t, double> buckets_;
    double total_ = 0.0;
};

/**
 * Distribution summary: exact count/sum/min/max plus a fixed-size
 * reservoir for percentile estimates. The reservoir replaces slots
 * with a deterministic multiplicative hash of the sample index, so
 * simulations stay reproducible (no RNG) while late samples still
 * displace early ones roughly uniformly.
 */
class Summary
{
  public:
    explicit Summary(std::size_t reservoirSize = kDefaultReservoir);

    void add(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }
    double mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /** Percentile estimate from the reservoir; @p p in [0, 100]. */
    double percentile(double p) const;

    /**
     * Fold @p other into this summary: exact stats combine exactly,
     * reservoir samples displace deterministically. Used to aggregate
     * per-Machine registries into one process-wide dump.
     */
    void merge(const Summary& other);

  private:
    static constexpr std::size_t kDefaultReservoir = 1024;

    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> reservoir_;
    std::size_t reservoirSize_;
};

/**
 * Flat namespace of counters, gauges, summaries and occupancy
 * histograms, dumpable as one JSON blob (metrics.json / `--metrics`).
 * Handles returned by counter()/gauge()/summary()/histogram() stay
 * valid for the registry's lifetime, so hot paths resolve names once
 * at construction.
 */
class MetricsRegistry
{
  public:
    /** Cheap gate mirroring Tracer::enabled(); default on. */
    bool enabled() const { return Tracer_kCompiledIn && enabled_; }
    void setEnabled(bool on) { enabled_ = Tracer_kCompiledIn && on; }

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Summary& summary(const std::string& name);
    Histogram& histogram(const std::string& name);

    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge>& gauges() const { return gauges_; }
    const std::map<std::string, Summary>& summaries() const
    {
        return summaries_;
    }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    /** Fold every metric of @p other into this registry. */
    void mergeFrom(const MetricsRegistry& other);

    /** Single JSON object with "counters", "gauges", "summaries" and
     *  "histograms" sections. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws Error on I/O failure. */
    void writeJson(const std::string& path) const;

  private:
#ifdef MSCCLPP_NO_OBS
    static constexpr bool Tracer_kCompiledIn = false;
#else
    static constexpr bool Tracer_kCompiledIn = true;
#endif

    bool enabled_ = true;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Summary> summaries_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_METRICS_HPP
