#ifndef MSCCLPP_OBS_METRICS_HPP
#define MSCCLPP_OBS_METRICS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mscclpp::obs {

/** Named monotonic counter (bytes moved, requests served, ...). */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Distribution summary: exact count/sum/min/max plus a fixed-size
 * reservoir for percentile estimates. The reservoir replaces slots
 * with a deterministic multiplicative hash of the sample index, so
 * simulations stay reproducible (no RNG) while late samples still
 * displace early ones roughly uniformly.
 */
class Summary
{
  public:
    explicit Summary(std::size_t reservoirSize = kDefaultReservoir);

    void add(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }
    double mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /** Percentile estimate from the reservoir; @p p in [0, 100]. */
    double percentile(double p) const;

    /**
     * Fold @p other into this summary: exact stats combine exactly,
     * reservoir samples displace deterministically. Used to aggregate
     * per-Machine registries into one process-wide dump.
     */
    void merge(const Summary& other);

  private:
    static constexpr std::size_t kDefaultReservoir = 1024;

    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> reservoir_;
    std::size_t reservoirSize_;
};

/**
 * Flat namespace of counters and summaries, dumpable as one JSON
 * blob (metrics.json / `--metrics`). Handles returned by counter()
 * and summary() stay valid for the registry's lifetime, so hot paths
 * resolve names once at construction.
 */
class MetricsRegistry
{
  public:
    /** Cheap gate mirroring Tracer::enabled(); default on. */
    bool enabled() const { return Tracer_kCompiledIn && enabled_; }
    void setEnabled(bool on) { enabled_ = Tracer_kCompiledIn && on; }

    Counter& counter(const std::string& name);
    Summary& summary(const std::string& name);

    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Summary>& summaries() const
    {
        return summaries_;
    }

    /** Fold every counter and summary of @p other into this registry. */
    void mergeFrom(const MetricsRegistry& other);

    /** Single JSON object: {"counters":{...},"summaries":{...}}. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws Error on I/O failure. */
    void writeJson(const std::string& path) const;

  private:
#ifdef MSCCLPP_NO_OBS
    static constexpr bool Tracer_kCompiledIn = false;
#else
    static constexpr bool Tracer_kCompiledIn = true;
#endif

    bool enabled_ = true;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Summary> summaries_;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_METRICS_HPP
