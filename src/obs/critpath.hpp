#ifndef MSCCLPP_OBS_CRITPATH_HPP
#define MSCCLPP_OBS_CRITPATH_HPP

#include "obs/trace.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mscclpp::obs {

/**
 * Where one slice of a collective's critical path was spent
 * (DESIGN.md Section 9). Every picosecond of the collective window is
 * attributed to exactly one category, so the per-category totals sum
 * to the measured latency.
 */
enum class PathCategory
{
    LinkSerialization, ///< bytes on a wire (put/putPackets/DMA/multimem)
    SyncWait,          ///< semaphore propagation + poll until resume
    ProxyHop,          ///< FIFO push/poll hop, proxy dispatch, flush
    KernelCompute,     ///< untraced device work between channel ops
    LaunchOverhead,    ///< kernel launch, block dispatch, host sync
};

const char* toString(PathCategory c);

/** One contiguous slice of the critical path, newest first as
 *  extracted (the report re-sorts oldest first). */
struct PathSegment
{
    PathCategory category = PathCategory::KernelCompute;
    sim::Time begin = 0;
    sim::Time end = 0;
    int pid = 0;          ///< where the time was spent
    std::string track;
    std::string what;     ///< span name, link name, or gap label

    sim::Time duration() const { return end - begin; }
};

/**
 * Critical path of one collective: the chain of spans, causal-edge
 * jumps and gaps that bounds its completion time, with every slice of
 * the collective window attributed to a category.
 */
struct CriticalPathReport
{
    std::string collective;   ///< root span name ("allreduce 2PA-HB")
    sim::Time begin = 0;      ///< collective span window
    sim::Time end = 0;
    std::vector<PathSegment> segments; ///< oldest first, contiguous

    std::map<PathCategory, sim::Time> byCategory;
    /// Serialisation time by bottleneck link name (from put-span
    /// details); only LinkSerialization segments contribute.
    std::map<std::string, sim::Time> byLink;
    /// Straggler skew: per device rank, how much earlier than the
    /// last block this rank's last block finished.
    std::map<int, sim::Time> rankSkew;

    /** Sum of all segment durations (== end - begin + host tail). */
    sim::Time total() const;

    /** Category with the largest attributed time. */
    PathCategory dominant() const;

    /** One-line human summary ("62.1us: link 71% sync 18% ..."). */
    std::string summaryLine() const;

    /** JSON object (schema used inside BENCH_*.json attribution). */
    std::string toJson() const;
};

/**
 * Happens-before analysis over one trace snapshot: span nesting plus
 * the causal edges emitted at signal->wait pairs, FIFO push->pop
 * hand-offs, link deliveries and kernel launches.
 *
 * Extraction walks backwards from the straggler thread block's end:
 * at every point it asks "what completed last before progress resumed
 * here" — the same-track predecessor span or the causal edge source,
 * whichever is later — and attributes the interval in between. The
 * walk is exact because the simulator is deterministic: a resume and
 * its cause carry identical timestamps, no fuzzy matching windows.
 */
class CritPathAnalyzer
{
  public:
    CritPathAnalyzer(std::vector<TraceEvent> events,
                     std::vector<TraceEdge> edges);

    /** Collective root spans found in the snapshot, oldest first. */
    const std::vector<TraceEvent>& collectives() const
    {
        return collectives_;
    }

    /**
     * Extract the critical path of @p coll (a Collective-category
     * span). @p hostTail appends a final synthetic LaunchOverhead
     * segment (host-side completion detection is part of every
     * measured latency but outside the traced window). Returns
     * nullopt when the snapshot holds no events inside the window.
     */
    std::optional<CriticalPathReport>
    analyze(const TraceEvent& coll, sim::Time hostTail = 0) const;

    /** Analyze the most recent collective span in the snapshot. */
    std::optional<CriticalPathReport>
    analyzeLast(sim::Time hostTail = 0) const;

    /**
     * Analyze every collective in the snapshot and sum the
     * per-category attributions (used by bench_report for workloads
     * that issue many collectives per measured step).
     */
    std::map<PathCategory, sim::Time> attributeAll() const;

  private:
    struct TrackKey
    {
        int pid;
        std::string track;
        bool operator<(const TrackKey& o) const
        {
            return pid != o.pid ? pid < o.pid : track < o.track;
        }
    };

    std::vector<TraceEvent> events_;
    std::vector<TraceEdge> edges_;
    std::vector<TraceEvent> collectives_;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_CRITPATH_HPP
