#include "obs/metrics.hpp"

#include "core/errors.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace mscclpp::obs {

Summary::Summary(std::size_t reservoirSize)
    : reservoirSize_(std::max<std::size_t>(reservoirSize, 1))
{
}

void
Summary::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    if (reservoir_.size() < reservoirSize_) {
        reservoir_.push_back(v);
    } else {
        // Knuth's multiplicative hash of the sample index: spreads
        // replacements across the reservoir without an RNG, keeping
        // the simulation deterministic.
        std::size_t slot = static_cast<std::size_t>(
            (count_ * 2654435761ull) % reservoirSize_);
        reservoir_[slot] = v;
    }
}

double
Summary::percentile(double p) const
{
    if (reservoir_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted = reservoir_;
    std::sort(sorted.begin(), sorted.end());
    double clamped = std::clamp(p, 0.0, 100.0);
    double idx = clamped / 100.0 *
                 static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void
Summary::merge(const Summary& other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (std::size_t i = 0; i < other.reservoir_.size(); ++i) {
        if (reservoir_.size() < reservoirSize_) {
            reservoir_.push_back(other.reservoir_[i]);
        } else {
            std::size_t slot = static_cast<std::size_t>(
                ((count_ + i) * 2654435761ull) % reservoirSize_);
            reservoir_[slot] = other.reservoir_[i];
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
MetricsRegistry::mergeFrom(const MetricsRegistry& other)
{
    for (const auto& [name, c] : other.counters()) {
        counter(name).add(c.value());
    }
    for (const auto& [name, s] : other.summaries()) {
        summary(name).merge(s);
    }
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    return counters_[name];
}

Summary&
MetricsRegistry::summary(const std::string& name)
{
    return summaries_[name];
}

namespace {

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + std::to_string(c.value());
    }
    out += "\n  },\n  \"summaries\": {";
    first = true;
    for (const auto& [name, s] : summaries_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"count\": " +
               std::to_string(s.count()) +
               ", \"sum\": " + jsonNumber(s.sum()) +
               ", \"min\": " + jsonNumber(s.min()) +
               ", \"max\": " + jsonNumber(s.max()) +
               ", \"mean\": " + jsonNumber(s.mean()) +
               ", \"p50\": " + jsonNumber(s.percentile(50)) +
               ", \"p99\": " + jsonNumber(s.percentile(99)) + "}";
    }
    out += "\n  }\n}\n";
    return out;
}

void
MetricsRegistry::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open metrics file '" + path +
                        "' for writing");
    }
    f << toJson();
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing metrics file '" + path + "'");
    }
}

} // namespace mscclpp::obs
