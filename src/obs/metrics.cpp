#include "obs/metrics.hpp"

#include "core/errors.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace mscclpp::obs {

// ---- Histogram -----------------------------------------------------------

Histogram::Histogram(sim::Time bucketWidth)
    : width_(std::max<sim::Time>(bucketWidth, 1))
{
}

void
Histogram::addRange(sim::Time begin, sim::Time end, double weight)
{
    if (end <= begin) {
        return;
    }
    std::uint64_t first = begin / width_;
    std::uint64_t last = (end - 1) / width_;
    for (std::uint64_t i = first; i <= last; ++i) {
        sim::Time lo = std::max<sim::Time>(begin, i * width_);
        sim::Time hi = std::min<sim::Time>(end, (i + 1) * width_);
        buckets_[i] += static_cast<double>(hi - lo) * weight;
    }
    total_ += static_cast<double>(end - begin) * weight;
    while (buckets_.size() > kMaxBuckets) {
        coarsen();
    }
}

void
Histogram::coarsen()
{
    width_ *= 2;
    std::map<std::uint64_t, double> coarse;
    for (const auto& [idx, busy] : buckets_) {
        coarse[idx / 2] += busy;
    }
    buckets_ = std::move(coarse);
}

double
Histogram::occupancy(std::uint64_t idx) const
{
    auto it = buckets_.find(idx);
    if (it == buckets_.end()) {
        return 0.0;
    }
    return it->second / static_cast<double>(width_);
}

double
Histogram::peakOccupancy() const
{
    double peak = 0.0;
    for (const auto& [idx, busy] : buckets_) {
        (void)idx;
        peak = std::max(peak, busy / static_cast<double>(width_));
    }
    return peak;
}

void
Histogram::merge(const Histogram& other)
{
    // Bring this histogram to at least the other's granularity; since
    // widths only ever double from a common default, the coarser width
    // tiles the finer one and the rebucketing below is exact.
    while (width_ < other.width_) {
        coarsen();
    }
    for (const auto& [idx, busy] : other.buckets_) {
        std::uint64_t start = idx * other.width_;
        buckets_[start / width_] += busy;
    }
    total_ += other.total_;
    while (buckets_.size() > kMaxBuckets) {
        coarsen();
    }
}

// ---- Summary -------------------------------------------------------------

Summary::Summary(std::size_t reservoirSize)
    : reservoirSize_(std::max<std::size_t>(reservoirSize, 1))
{
}

void
Summary::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    if (reservoir_.size() < reservoirSize_) {
        reservoir_.push_back(v);
    } else {
        // Knuth's multiplicative hash of the sample index: spreads
        // replacements across the reservoir without an RNG, keeping
        // the simulation deterministic.
        std::size_t slot = static_cast<std::size_t>(
            (count_ * 2654435761ull) % reservoirSize_);
        reservoir_[slot] = v;
    }
}

double
Summary::percentile(double p) const
{
    if (reservoir_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted = reservoir_;
    std::sort(sorted.begin(), sorted.end());
    double clamped = std::clamp(p, 0.0, 100.0);
    double idx = clamped / 100.0 *
                 static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void
Summary::merge(const Summary& other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (std::size_t i = 0; i < other.reservoir_.size(); ++i) {
        if (reservoir_.size() < reservoirSize_) {
            reservoir_.push_back(other.reservoir_[i]);
        } else {
            std::size_t slot = static_cast<std::size_t>(
                ((count_ + i) * 2654435761ull) % reservoirSize_);
            reservoir_[slot] = other.reservoir_[i];
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

// ---- MetricsRegistry -----------------------------------------------------

void
MetricsRegistry::mergeFrom(const MetricsRegistry& other)
{
    for (const auto& [name, c] : other.counters()) {
        counter(name).add(c.value());
    }
    for (const auto& [name, g] : other.gauges()) {
        gauge(name).merge(g);
    }
    for (const auto& [name, s] : other.summaries()) {
        summary(name).merge(s);
    }
    for (const auto& [name, h] : other.histograms()) {
        histogram(name).merge(h);
    }
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    return counters_[name];
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    return gauges_[name];
}

Summary&
MetricsRegistry::summary(const std::string& name)
{
    return summaries_[name];
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram()).first;
    }
    return it->second;
}

namespace {

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": " + std::to_string(c.value());
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, g] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"value\": " +
               jsonNumber(g.value()) +
               ", \"max\": " + jsonNumber(g.max()) + "}";
    }
    out += "\n  },\n  \"summaries\": {";
    first = true;
    for (const auto& [name, s] : summaries_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"count\": " +
               std::to_string(s.count()) +
               ", \"sum\": " + jsonNumber(s.sum()) +
               ", \"min\": " + jsonNumber(s.min()) +
               ", \"max\": " + jsonNumber(s.max()) +
               ", \"mean\": " + jsonNumber(s.mean()) +
               ", \"p50\": " + jsonNumber(s.percentile(50)) +
               ", \"p99\": " + jsonNumber(s.percentile(99)) + "}";
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + name + "\": {\"bucket_ns\": " +
               jsonNumber(sim::toNs(h.bucketWidth())) +
               ", \"total_busy_ns\": " + jsonNumber(h.total() / 1e3) +
               ", \"peak_occupancy\": " + jsonNumber(h.peakOccupancy()) +
               ", \"buckets\": {";
        bool bFirst = true;
        for (const auto& [idx, busy] : h.buckets()) {
            out += bFirst ? "" : ", ";
            bFirst = false;
            out += "\"" + std::to_string(idx) + "\": " +
                   jsonNumber(busy / static_cast<double>(h.bucketWidth()));
        }
        out += "}}";
    }
    out += "\n  }\n}\n";
    return out;
}

void
MetricsRegistry::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open metrics file '" + path +
                        "' for writing");
    }
    f << toJson();
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing metrics file '" + path + "'");
    }
}

} // namespace mscclpp::obs
