#ifndef MSCCLPP_OBS_WINDOW_HPP
#define MSCCLPP_OBS_WINDOW_HPP

#include "obs/critpath.hpp"
#include "obs/trace.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mscclpp::obs {

class FlightRecorder;
class MetricsRegistry;

/**
 * Where one slice of a serving *step* went (DESIGN.md Section 10). A
 * step window spans every collective, kernel and proxy hop issued
 * between beginStep() and endStep(); unlike the per-collective
 * PathCategory split it also knows about the compute the step
 * interleaved between collectives, so it can separate communication
 * that extended the step (ExposedComms) from communication that hid
 * under compute (OverlapSlack).
 */
enum class StepCategory
{
    Compute,      ///< device compute: critical-path kernel time, gaps
                  ///< between collectives, declared external compute
    ExposedComms, ///< wire serialisation on the step's critical path
    SyncWait,     ///< semaphore propagation + poll on the path
    ProxyHop,     ///< FIFO hops, proxy dispatch, flush
    Launch,       ///< kernel launch, block dispatch, host sync
    OverlapSlack, ///< comm occupancy hidden under compute (not on the
                  ///< critical path; shrinking it cannot speed the step)
};

const char* toString(StepCategory c);

/** All categories in a fixed report order. */
inline constexpr StepCategory kStepCategories[] = {
    StepCategory::Compute,    StepCategory::ExposedComms,
    StepCategory::SyncWait,   StepCategory::ProxyHop,
    StepCategory::Launch,     StepCategory::OverlapSlack,
};

/**
 * Attribution of one step window. Invariant: the six buckets sum
 * *exactly* to `measured` — every picosecond of the reported step
 * latency lands in exactly one bucket (see reconcile() for how
 * latency outside the traced window is apportioned).
 */
struct StepAttribution
{
    std::string label;    ///< step label ("decode", "dsl:allreduce")
    sim::Time begin = 0;  ///< traced window bounds (virtual time)
    sim::Time end = 0;
    sim::Time measured = 0; ///< reported step latency the buckets sum to

    std::map<StepCategory, sim::Time> buckets;
    std::map<std::string, sim::Time> byLink; ///< critical-path wire time
    std::map<int, sim::Time> rankSkew;
    int stragglerRank = -1;   ///< rank whose block finished last
    std::string culpritLink;  ///< argmax of byLink ("" when no comm)
    int collectives = 0;      ///< collective roots inside the window
    /// Name of the longest collective root in the window ("" when
    /// none) — the hop between a step and the collective a request's
    /// blame chain should name.
    std::string dominantCollective;

    sim::Time bucket(StepCategory c) const
    {
        auto it = buckets.find(c);
        return it == buckets.end() ? 0 : it->second;
    }

    /** Sum of all buckets (== measured by construction). */
    sim::Time total() const;

    /** One-line human summary. */
    std::string summaryLine() const;

    /** JSON object (used in flight records and BENCH_*.json). */
    std::string toJson() const;
};

/**
 * Attribute the step window [w0, w1] over @p events / @p edges:
 * per-collective critical paths (CritPathAnalyzer) are stitched with
 * the inter-collective gaps (compute), comm occupancy under those
 * gaps is reclassified as overlap slack, and the result is reconciled
 * with @p measured so the buckets sum to it exactly.
 *
 * @param measured the step latency being explained; 0 means
 *        (w1 - w0) + externalCompute. When the caller replicates one
 *        traced collective N times (the inference model) or adds
 *        host-side tails, measured exceeds the traced window; the
 *        surplus is apportioned over the comm buckets
 *        largest-remainder style, so integer exactness holds.
 * @param externalCompute compute the caller accounts analytically
 *        without advancing virtual time (roofline models); lands in
 *        Compute.
 */
StepAttribution
attributeWindow(const std::vector<TraceEvent>& events,
                const std::vector<TraceEdge>& edges, sim::Time w0,
                sim::Time w1, std::string label, sim::Time measured = 0,
                sim::Time externalCompute = 0);

/**
 * The step-scoping half of the profiler: beginStep()/endStep() bracket
 * one serving iteration (a decode step, one DSL program, one explicit
 * user window). endStep() snapshots the tracer window, runs the
 * attribution above, records a Category::Step span on the host "steps"
 * track (Perfetto grouping) and feeds the digest to the flight
 * recorder when one is attached.
 *
 * Library call sites (InferenceSim::decodeStep, dsl::Executor::run)
 * use beginStepIfIdle() so an explicit outer window wins; beginStep()
 * throws Error(InvalidUsage) when a step is already open, which is
 * exactly the missed-endStep() diagnostic the tests rely on.
 *
 * All entry points are no-ops while the tracer is disabled, so the
 * MSCCLPP_NO_OBS build and untraced runs pay one branch per step.
 */
class StepWindow
{
  public:
    explicit StepWindow(Tracer& tracer) : tracer_(&tracer) {}

    StepWindow(const StepWindow&) = delete;
    StepWindow& operator=(const StepWindow&) = delete;

    /** Wire the optional sinks (ObsContext construction). */
    void bind(MetricsRegistry* metrics, FlightRecorder* flight)
    {
        metrics_ = metrics;
        flight_ = flight;
    }

    bool active() const { return active_; }
    std::uint64_t stepsCompleted() const { return completed_; }

    /** Label / start of the open window (valid while active()); the
     *  watchdog stamps hang reports with the step they interrupted. */
    const std::string& activeLabel() const { return label_; }
    sim::Time activeBegin() const { return begin_; }

    /**
     * Open a step window at virtual time @p now. Throws
     * Error(InvalidUsage) naming the open step when one is already
     * active — a missed endStep() upstream.
     */
    void beginStep(std::string label, sim::Time now);

    /** Open a window only when none is active. @return true when this
     *  call opened it (the caller then owns the endStep()). */
    bool beginStepIfIdle(std::string label, sim::Time now);

    /**
     * Close the window at @p now and attribute it (see
     * attributeWindow for @p measured / @p externalCompute). Throws
     * Error(InvalidUsage) when no step is open.
     */
    StepAttribution endStep(sim::Time now, sim::Time measured = 0,
                            sim::Time externalCompute = 0);

    /** Attribution of the most recent completed step (nullptr before
     *  the first endStep()). */
    const StepAttribution* lastStep() const
    {
        return completed_ > 0 ? &last_ : nullptr;
    }

  private:
    Tracer* tracer_;
    MetricsRegistry* metrics_ = nullptr;
    FlightRecorder* flight_ = nullptr;
    bool active_ = false;
    std::string label_;
    sim::Time begin_ = 0;
    std::uint64_t completed_ = 0;
    StepAttribution last_;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_WINDOW_HPP
