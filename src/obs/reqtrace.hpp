#ifndef MSCCLPP_OBS_REQTRACE_HPP
#define MSCCLPP_OBS_REQTRACE_HPP

#include "obs/window.hpp"
#include "sim/time.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mscclpp::obs {

/**
 * Phase of a request's span tree (DESIGN.md Section 13). Queued and
 * PreemptWait spans are synthesised when a trace is finalised: the
 * serving layer records only the phases where the request actually
 * ran, and every untraced gap between them is, by construction, time
 * the request spent waiting.
 */
enum class ReqPhase
{
    Queued,      ///< waiting for admission (synthesised gap)
    Prefill,     ///< running in a prefill batch
    Recompute,   ///< re-prefilling evicted context after preemption
    Decode,      ///< running in a decode batch (one span per step)
    Migration,   ///< KV shard in flight to a decode replica
    PreemptWait, ///< evicted, waiting to re-prefill (synthesised gap)
};

const char* toString(ReqPhase p);

/**
 * Where one request's latency went. The seven buckets reconcile
 * *exactly* to the measured latency (TTFT or e2e): every picosecond
 * between arrival and completion lands in exactly one bucket, the
 * same invariant StepAttribution maintains per step.
 */
enum class ReqCategory
{
    QueueWait,      ///< admission queueing (arrival and post-migration)
    PrefillCompute, ///< prefill-step compute (incl. hidden comm slack)
    DecodeCompute,  ///< decode-step compute (incl. hidden comm slack)
    ExposedComms,   ///< critical-path wire + proxy + launch time of the
                    ///< request's steps
    SyncWait,       ///< semaphore propagation + poll on those paths
    PreemptionLost, ///< eviction wait + the recompute prefill itself
    KvMigration,    ///< NIC transfer of the KV shard (disaggregation)
};

const char* toString(ReqCategory c);

/** All categories in a fixed report order. */
inline constexpr ReqCategory kReqCategories[] = {
    ReqCategory::QueueWait,    ReqCategory::PrefillCompute,
    ReqCategory::DecodeCompute, ReqCategory::ExposedComms,
    ReqCategory::SyncWait,     ReqCategory::PreemptionLost,
    ReqCategory::KvMigration,
};

/**
 * One node of a request's span tree. Phase spans recorded by the
 * serving layer carry the owning step's attribution digest (buckets,
 * dominant collective, culprit link), which is what lets a request's
 * latency split reuse the StepWindow/critpath machinery instead of
 * re-deriving it.
 */
struct RequestSpan
{
    ReqPhase phase = ReqPhase::Queued;
    sim::Time begin = 0;
    sim::Time end = 0;
    int replica = -1;        ///< -1 for synthesised waits / migration
    std::string label;       ///< step label ("serve.decode.b4")
    std::uint64_t bytes = 0; ///< migrated KV shard bytes

    // Step-window digest (empty when the step was untraced).
    std::string collective; ///< dominant collective inside the step
    std::string link;       ///< the step's culprit link
    int stragglerRank = -1;
    sim::Time stepMeasured = 0;
    std::map<StepCategory, sim::Time> stepBuckets;
};

/**
 * The most expensive cause of a request's latency: replica -> step ->
 * collective -> link, the chain trace_query prints. Communication
 * cost is aggregated per culprit link across all of the request's
 * steps before picking the winner, so a degraded link that taxes
 * every decode step outweighs one expensive prefill; the anchor span
 * (step/at/collective) is the costliest step on the blamed link.
 */
struct ReqBlame
{
    int replica = -1;
    std::string step;       ///< step label of the anchor span
    sim::Time at = 0;       ///< begin of the anchor span
    std::string collective; ///< dominant collective of that step
    std::string link;       ///< the blamed link ("" when no comm)
    ReqCategory category = ReqCategory::QueueWait;
    sim::Time cost = 0; ///< the link's summed cost to the request
};

/** Finalised per-request trace: a contiguous span tree covering
 *  [arrival, completed] plus the exact latency attribution. */
struct RequestTrace
{
    int id = -1;
    sim::Time arrival = 0;
    sim::Time firstToken = 0;
    sim::Time completed = 0;
    int replica = -1; ///< replica that completed (or dropped) it
    int preemptions = 0;
    int decodeSteps = 0;
    bool dropped = false;
    bool done = false;

    /// Contiguous, non-overlapping spans from arrival to completion
    /// (waits synthesised); valid once the request is done.
    std::vector<RequestSpan> spans;
    std::vector<sim::Time> preemptedAt; ///< eviction markers

    std::map<ReqCategory, sim::Time> ttftBuckets;
    std::map<ReqCategory, sim::Time> e2eBuckets;
    ReqBlame blame;

    sim::Time ttft() const { return firstToken - arrival; }
    sim::Time e2e() const { return completed - arrival; }

    sim::Time ttftBucket(ReqCategory c) const;
    sim::Time e2eBucket(ReqCategory c) const;

    /** JSON object for the mscclpp.reqtrace dump. */
    std::string toJson() const;
};

/**
 * Cluster-level request tracer: the serving layer reports every
 * request's lifecycle (arrival, batched phases with their step
 * attributions, preemptions, KV migrations, completion) and the
 * tracer folds each finished request into an exact seven-bucket
 * latency split, keeping the full span tree of only the k worst
 * requests per SLO class online (flight-recorder discipline: bounded
 * memory no matter how long the run).
 *
 * Lives beside — not inside — the per-Machine ObsContext because one
 * request's tree spans replicas (prefill here, decode there, the KV
 * migration in between). Compiled out with -DMSCCLPP_NO_OBS the same
 * way the Tracer is: enabled() is constant false and every hook is a
 * dead branch.
 *
 * Like the Tracer, it never advances virtual time.
 */
class RequestTracer
{
  public:
#ifdef MSCCLPP_NO_OBS
    static constexpr bool kCompiledIn = false;
#else
    static constexpr bool kCompiledIn = true;
#endif

    bool enabled() const { return kCompiledIn && enabled_; }
    void setEnabled(bool on) { enabled_ = kCompiledIn && on; }

    int topK() const { return topK_; }
    void setTopK(int k) { topK_ = k < 1 ? 1 : k; }

    const std::string& file() const { return file_; }
    void setFile(std::string path) { file_ = std::move(path); }

    /** A request entered the cluster. */
    void onArrival(int id, sim::Time at);

    /**
     * The request ran in one batched step [begin, end) on @p replica.
     * @p att is the step window's attribution (nullptr when the
     * machine's tracer is off); when its measured latency equals the
     * span duration — always true for the serving step engine — the
     * request's split reuses it verbatim, keeping exactness.
     */
    void onPhase(int id, ReqPhase phase, sim::Time begin, sim::Time end,
                 int replica, std::string label,
                 const StepAttribution* att);

    /** KV shard of @p id in flight from @p from to @p to. */
    void onMigration(int id, sim::Time begin, sim::Time end, int from,
                     int to, std::uint64_t bytes);

    /** The request was evicted (recompute-style) at @p at. */
    void onPreempted(int id, sim::Time at, int replica);

    /** The request completed; finalises and retains the trace. */
    void onDone(int id, sim::Time firstToken, sim::Time completed,
                int replica);

    /** The request could never fit and was dropped. */
    void onDropped(int id, sim::Time at, int replica);

    /** Stamp a mid-run fault so the dump can separate pre/post-fault
     *  exemplars (the acceptance test's pivot). */
    void noteFault(int replica, std::string link, sim::Time at);

    std::uint64_t observed() const { return observed_; }
    std::uint64_t completedCount() const { return completed_; }
    std::uint64_t droppedCount() const { return dropped_; }
    std::uint64_t preemptionEvents() const { return preemptionEvents_; }
    std::uint64_t migrations() const { return migrations_; }

    /** Worst-first exemplars of @p cls ("ttft" or "e2e"). */
    const std::vector<RequestTrace>& exemplars(
        const std::string& cls) const;

    /** Retained trace of request @p id, nullptr when it was evicted
     *  from both top-k classes. */
    const RequestTrace* find(int id) const;

    /** Serialise the mscclpp.reqtrace v1 dump. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws Error on I/O failure. */
    void writeJson(const std::string& path) const;

  private:
    struct FaultStamp
    {
        int replica = 0;
        std::string link;
        sim::Time at = 0;
    };

    RequestTrace& open(int id);
    void finalize(RequestTrace& t);
    void retain(RequestTrace&& t);

    bool enabled_ = false;
    int topK_ = 4;
    std::string file_;

    std::map<int, RequestTrace> open_;
    std::vector<RequestTrace> worstTtft_; ///< sorted worst-first
    std::vector<RequestTrace> worstE2e_;  ///< sorted worst-first
    std::vector<FaultStamp> faults_;

    std::uint64_t observed_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t preemptionEvents_ = 0;
    std::uint64_t migrations_ = 0;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_REQTRACE_HPP
