#include "obs/window.hpp"

#include "core/errors.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace mscclpp::obs {

const char*
toString(StepCategory c)
{
    switch (c) {
      case StepCategory::Compute:
        return "compute";
      case StepCategory::ExposedComms:
        return "exposed_comms";
      case StepCategory::SyncWait:
        return "sync_wait";
      case StepCategory::ProxyHop:
        return "proxy_hop";
      case StepCategory::Launch:
        return "launch";
      case StepCategory::OverlapSlack:
        return "overlap_slack";
    }
    return "?";
}

sim::Time
StepAttribution::total() const
{
    sim::Time t = 0;
    for (const auto& [cat, v] : buckets) {
        t += v;
    }
    return t;
}

std::string
StepAttribution::summaryLine() const
{
    std::string out =
        label + ": " + sim::formatTime(measured) + " =";
    for (StepCategory c : kStepCategories) {
        double pct = measured == 0
                         ? 0.0
                         : 100.0 * static_cast<double>(bucket(c)) /
                               static_cast<double>(measured);
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %s %.0f%%", toString(c), pct);
        out += buf;
    }
    if (!culpritLink.empty()) {
        out += " [" + culpritLink + "]";
    }
    return out;
}

namespace {

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** Map one per-collective critical-path bucket onto a step bucket. */
StepCategory
stepCategoryOf(PathCategory c)
{
    switch (c) {
      case PathCategory::LinkSerialization:
        return StepCategory::ExposedComms;
      case PathCategory::SyncWait:
        return StepCategory::SyncWait;
      case PathCategory::ProxyHop:
        return StepCategory::ProxyHop;
      case PathCategory::KernelCompute:
        return StepCategory::Compute;
      case PathCategory::LaunchOverhead:
        return StepCategory::Launch;
    }
    return StepCategory::Compute;
}

/**
 * Apportion @p amount over the comm buckets proportionally to their
 * current sizes, largest-remainder style so the integer shares sum to
 * @p amount exactly. With no comm at all the whole amount is exposed
 * communication (the caller declared latency the trace cannot see).
 */
void
apportionResidual(std::map<StepCategory, sim::Time>& buckets,
                  sim::Time amount)
{
    const StepCategory comm[] = {
        StepCategory::ExposedComms, StepCategory::SyncWait,
        StepCategory::ProxyHop, StepCategory::Launch};
    unsigned __int128 weightSum = 0;
    for (StepCategory c : comm) {
        weightSum += buckets[c];
    }
    if (weightSum == 0) {
        buckets[StepCategory::ExposedComms] += amount;
        return;
    }
    sim::Time assigned = 0;
    struct Rem
    {
        unsigned __int128 rem;
        StepCategory cat;
    };
    Rem rems[4];
    int n = 0;
    for (StepCategory c : comm) {
        unsigned __int128 num =
            static_cast<unsigned __int128>(amount) * buckets[c];
        sim::Time share = static_cast<sim::Time>(num / weightSum);
        rems[n++] = Rem{num % weightSum, c};
        buckets[c] += share;
        assigned += share;
    }
    // Hand the rounding leftover (< 4 units) to the largest
    // remainders; ties break on category order for determinism.
    std::stable_sort(rems, rems + n, [](const Rem& a, const Rem& b) {
        return a.rem > b.rem;
    });
    for (int i = 0; assigned < amount; ++i) {
        buckets[rems[i % n].cat] += 1;
        ++assigned;
    }
}

/** Shrink buckets in a fixed priority order until @p deficit is
 *  consumed (measured latency below the traced window: the declared
 *  step was shorter than what the trace shows, so the most
 *  double-counted buckets give way first). */
void
shrinkBuckets(std::map<StepCategory, sim::Time>& buckets,
              sim::Time deficit)
{
    const StepCategory order[] = {
        StepCategory::Compute,      StepCategory::OverlapSlack,
        StepCategory::ExposedComms, StepCategory::SyncWait,
        StepCategory::ProxyHop,     StepCategory::Launch};
    for (StepCategory c : order) {
        if (deficit == 0) {
            return;
        }
        sim::Time cut = std::min(buckets[c], deficit);
        buckets[c] -= cut;
        deficit -= cut;
    }
}

} // namespace

std::string
StepAttribution::toJson() const
{
    std::string out = "{\"label\": \"" + label +
                      "\", \"begin_ns\": " + jsonNum(sim::toNs(begin)) +
                      ", \"window_ns\": " +
                      jsonNum(sim::toNs(end - begin)) +
                      ", \"measured_ns\": " +
                      jsonNum(sim::toNs(measured)) + ", \"buckets\": {";
    bool first = true;
    for (StepCategory c : kStepCategories) {
        out += first ? "" : ", ";
        first = false;
        out += std::string("\"") + toString(c) +
               "\": " + jsonNum(sim::toNs(bucket(c)));
    }
    out += "}, \"links\": {";
    first = true;
    for (const auto& [link, t] : byLink) {
        out += first ? "" : ", ";
        first = false;
        out += "\"" + link + "\": " + jsonNum(sim::toNs(t));
    }
    out += "}, \"straggler_rank\": " + std::to_string(stragglerRank) +
           ", \"culprit_link\": \"" + culpritLink +
           "\", \"dominant_collective\": \"" + dominantCollective +
           "\", \"collectives\": " + std::to_string(collectives) + "}";
    return out;
}

StepAttribution
attributeWindow(const std::vector<TraceEvent>& events,
                const std::vector<TraceEdge>& edges, sim::Time w0,
                sim::Time w1, std::string label, sim::Time measured,
                sim::Time externalCompute)
{
    StepAttribution att;
    att.label = std::move(label);
    att.begin = w0;
    att.end = w1;
    for (StepCategory c : kStepCategories) {
        att.buckets[c] = 0;
    }

    // Collective roots inside the window, serialised: each collective
    // runs the machine to completion before the next is issued, so a
    // root beginning before the previous root ended would be a nested
    // re-entry — skip it, its time already belongs to the outer one.
    std::vector<const TraceEvent*> colls;
    for (const TraceEvent& ev : events) {
        if (ev.cat == Category::Collective && ev.begin >= w0 &&
            ev.end <= w1) {
            colls.push_back(&ev);
        }
    }
    std::stable_sort(colls.begin(), colls.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                         return a->begin < b->begin;
                     });
    {
        sim::Time cursor = w0;
        std::vector<const TraceEvent*> serial;
        for (const TraceEvent* c : colls) {
            if (c->begin >= cursor) {
                serial.push_back(c);
                cursor = c->end;
            }
        }
        colls.swap(serial);
    }
    att.collectives = static_cast<int>(colls.size());
    {
        const TraceEvent* longest = nullptr;
        for (const TraceEvent* c : colls) {
            if (longest == nullptr ||
                c->end - c->begin > longest->end - longest->begin) {
                longest = c;
            }
        }
        if (longest != nullptr) {
            att.dominantCollective = longest->name;
        }
    }

    // Per-collective critical paths, mapped onto step buckets.
    CritPathAnalyzer analyzer(events, edges);
    for (const TraceEvent* c : colls) {
        std::optional<CriticalPathReport> rep = analyzer.analyze(*c);
        if (!rep) {
            // Empty collective (no traced leaves): its whole window
            // still elapsed — charge it as exposed communication.
            att.buckets[StepCategory::ExposedComms] += c->end - c->begin;
            continue;
        }
        for (const auto& [cat, t] : rep->byCategory) {
            att.buckets[stepCategoryOf(cat)] += t;
        }
        for (const auto& [link, t] : rep->byLink) {
            att.byLink[link] += t;
        }
        for (const auto& [rank, t] : rep->rankSkew) {
            att.rankSkew[rank] += t;
        }
    }

    // Gaps between collective windows are untraced step compute.
    std::vector<std::pair<sim::Time, sim::Time>> gaps;
    {
        sim::Time cursor = w0;
        for (const TraceEvent* c : colls) {
            if (c->begin > cursor) {
                gaps.emplace_back(cursor, c->begin);
            }
            cursor = c->end;
        }
        if (w1 > cursor) {
            gaps.emplace_back(cursor, w1);
        }
    }
    sim::Time gapTotal = 0;
    for (const auto& [a, b] : gaps) {
        gapTotal += b - a;
    }

    // Overlap slack: wire occupancy (Link spans) under those compute
    // gaps — communication the step fully hid. Merge the link spans
    // into disjoint intervals first so concurrent links don't double
    // count, then intersect with the gaps.
    sim::Time slack = 0;
    {
        std::vector<std::pair<sim::Time, sim::Time>> wire;
        for (const TraceEvent& ev : events) {
            if (ev.cat == Category::Link && ev.end > w0 &&
                ev.begin < w1 && ev.end > ev.begin) {
                wire.emplace_back(std::max(ev.begin, w0),
                                  std::min(ev.end, w1));
            }
        }
        std::sort(wire.begin(), wire.end());
        std::vector<std::pair<sim::Time, sim::Time>> merged;
        for (const auto& iv : wire) {
            if (!merged.empty() && iv.first <= merged.back().second) {
                merged.back().second =
                    std::max(merged.back().second, iv.second);
            } else {
                merged.push_back(iv);
            }
        }
        std::size_t gi = 0;
        for (const auto& [a, b] : merged) {
            while (gi < gaps.size() && gaps[gi].second <= a) {
                ++gi;
            }
            for (std::size_t j = gi; j < gaps.size(); ++j) {
                sim::Time lo = std::max(a, gaps[j].first);
                sim::Time hi = std::min(b, gaps[j].second);
                if (lo < hi) {
                    slack += hi - lo;
                }
                if (gaps[j].first >= b) {
                    break;
                }
            }
        }
    }
    att.buckets[StepCategory::Compute] += gapTotal - slack;
    att.buckets[StepCategory::OverlapSlack] += slack;

    // Straggler: the rank whose last thread block finished latest.
    sim::Time stragglerEnd = 0;
    for (const TraceEvent& ev : events) {
        if (ev.cat == Category::Kernel && ev.name == "block" &&
            ev.begin >= w0 && ev.end <= w1 &&
            (att.stragglerRank < 0 || ev.end > stragglerEnd)) {
            att.stragglerRank = ev.pid;
            stragglerEnd = ev.end;
        }
    }

    // Reconcile with the declared step latency: buckets currently sum
    // to (w1 - w0); add the analytic compute, then apportion the
    // surplus (replicated collectives, host tails the caller timed
    // outside the window) or shrink on deficit. Exact by construction.
    att.buckets[StepCategory::Compute] += externalCompute;
    sim::Time traced = (w1 - w0) + externalCompute;
    att.measured = measured == 0 ? traced : measured;
    if (att.measured > traced) {
        apportionResidual(att.buckets, att.measured - traced);
    } else if (att.measured < traced) {
        shrinkBuckets(att.buckets, traced - att.measured);
    }

    // Culprit link: where the step's critical-path wire time went.
    sim::Time best = 0;
    for (const auto& [link, t] : att.byLink) {
        if (t > best) {
            best = t;
            att.culpritLink = link;
        }
    }
    return att;
}

void
StepWindow::beginStep(std::string label, sim::Time now)
{
    if (!tracer_->enabled()) {
        return;
    }
    if (active_) {
        throw Error(ErrorCode::InvalidUsage,
                    "beginStep('" + label + "') while step '" + label_ +
                        "' begun at " + sim::formatTime(begin_) +
                        " is still open — missing endStep()");
    }
    active_ = true;
    label_ = std::move(label);
    begin_ = now;
}

bool
StepWindow::beginStepIfIdle(std::string label, sim::Time now)
{
    if (!tracer_->enabled() || active_) {
        return false;
    }
    beginStep(std::move(label), now);
    return true;
}

StepAttribution
StepWindow::endStep(sim::Time now, sim::Time measured,
                    sim::Time externalCompute)
{
    if (!tracer_->enabled()) {
        return {};
    }
    if (!active_) {
        throw Error(ErrorCode::InvalidUsage,
                    "endStep() without an open step — beginStep() was "
                    "never called or the step already ended");
    }
    active_ = false;
    std::vector<TraceEvent> events = tracer_->snapshotWindow(begin_, now);
    std::vector<TraceEdge> windowEdges =
        tracer_->edgesSnapshotWindow(begin_, now);
    StepAttribution att =
        attributeWindow(events, windowEdges, begin_, now, label_,
                        measured, externalCompute);
    // The window itself becomes a span on a dedicated host track, so
    // Perfetto groups each decode step visually.
    tracer_->span(Category::Step, label_, kHostPid, "steps", begin_, now,
                  0, -1, att.culpritLink);
    ++completed_;
    if (metrics_ != nullptr && metrics_->enabled()) {
        metrics_->summary("step.measured_ns")
            .add(sim::toNs(att.measured));
        for (StepCategory c : kStepCategories) {
            metrics_
                ->summary(std::string("step.") + toString(c) + "_ns")
                .add(sim::toNs(att.bucket(c)));
        }
    }
    if (flight_ != nullptr) {
        flight_->onStep(att, events, windowEdges);
    }
    last_ = std::move(att);
    return last_;
}

} // namespace mscclpp::obs
