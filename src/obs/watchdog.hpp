#ifndef MSCCLPP_OBS_WATCHDOG_HPP
#define MSCCLPP_OBS_WATCHDOG_HPP

#include "obs/trace.hpp"
#include "sim/time.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mscclpp::sim {
class Scheduler;
}

namespace mscclpp::obs {

class FlightRecorder;
class StepWindow;

/** What kind of blocking point a registered wait is. */
enum class WaitKind
{
    SemWait,     ///< DeviceSemaphore::wait (Port/Memory channel wait())
    FifoPop,     ///< proxy blocking on an empty FIFO (idle is normal)
    FifoPush,    ///< GPU thread blocking on a full FIFO
    Flush,       ///< PortChannel::flush waiting for the proxy's ticket
    Barrier,     ///< grid barrier / kernel-completion wait group
    Reservation, ///< link/path reservation pacing a transfer
};

const char* toString(WaitKind k);

enum class WatchdogMode
{
    Off,
    Report, ///< emit hang reports, let the run keep going
    Abort,  ///< throw Error(Timeout) out of Machine::run() (fail fast)
};

/**
 * One outstanding blocking point. The one-sided put/signal/wait API
 * means every wait has a well-defined counterpart, recorded here as
 * the *owed party*: the coarse actor ("rank3", "proxy:r0->r1",
 * "proxy:service@r2", "link:nic8.rx") that must act for the wait to
 * complete, plus human detail strings for the report.
 */
struct WaitPoint
{
    std::uint64_t id = 0;
    WaitKind kind = WaitKind::SemWait;
    std::string waiter;       ///< coarse waiting party ("rank1")
    std::string waiterDetail; ///< e.g. "rank1 memory-channel wait <- rank3"
    std::string owed;         ///< coarse owed party ("rank3")
    std::string owedDetail;   ///< e.g. "signal from rank3 (memory channel)"
    std::string opLabel;      ///< enclosing collective / DSL program
    sim::Time since = 0;
    /** FifoPop waits are wait-for-graph edges but never hang subjects:
     *  an idle proxy legitimately blocks on pop between requests. */
    bool reportable = true;
    bool reported = false;
};

/** One emitted hang diagnosis. */
struct HangReport
{
    sim::Time at = 0;    ///< virtual time the report fired
    WaitPoint blocked;   ///< the wait chosen as the subject
    std::string classification; ///< "deadlock" | "straggler"
    std::vector<std::string> cycle; ///< parties on the cycle (deadlock)
    std::vector<std::string> chain; ///< waiter -> ... -> root party
    std::string rootCause;          ///< terminal party of the chain
    std::string rootCauseReason;    ///< cyclic_wait | dead_proxy |
                                    ///< missing_signal | degraded_link |
                                    ///< link_contention
    std::string rootCauseDetail;
    std::string stepLabel;   ///< open step window, if any
    double stepSigmas = 0.0; ///< pre-stall elapsed vs per-label baseline
    bool stepBaselined = false; ///< stepSigmas is meaningful
    std::map<std::string, double> degradedLinks; ///< name -> factor
    std::string windowJson; ///< flight-recorder trace snapshot

    std::string toJson() const;
    std::string summaryLine() const;
};

/**
 * Stall watchdog over the simulator's blocking points (DESIGN.md
 * Section 11). Every wait that can stall registers itself with its
 * expected counterpart; because all simulated waits are
 * suspension-based, a true hang is precisely "the event queue drained
 * while registered waits are outstanding". The scheduler's idle hook
 * (onIdle) therefore fires only for genuinely hung runs — a clean run
 * never sees a watchdog event and its timeline is untouched.
 *
 * When the oldest outstanding reportable wait has exceeded the
 * threshold of *virtual* time, the watchdog walks the wait-for graph
 * from it: party -> owed party -> that party's own oldest wait -> ...
 * A revisited party closes a cycle (deadlock); otherwise the walk
 * terminates at a root cause — a party marked dead (dead proxy), a
 * link node (degraded / contended), or a party with no outstanding
 * waits that simply never signaled (missing signal).
 *
 * Compiled out with the rest of the obs stack under MSCCLPP_NO_OBS:
 * enabled() constant-folds to false and every hook is one dead branch.
 */
class Watchdog
{
  public:
    Watchdog() = default;
    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /** Wire the collaborators (Machine construction). */
    void bind(sim::Scheduler* sched, Tracer* tracer,
              FlightRecorder* flight, StepWindow* window)
    {
        sched_ = sched;
        tracer_ = tracer;
        flight_ = flight;
        window_ = window;
    }

    bool enabled() const
    {
        return Tracer::kCompiledIn && mode_ != WatchdogMode::Off &&
               sched_ != nullptr;
    }

    WatchdogMode mode() const { return mode_; }
    void setMode(WatchdogMode m) { mode_ = m; }

    sim::Time threshold() const { return threshold_; }
    void setThreshold(sim::Time t) { threshold_ = t; }

    /**
     * Register an outstanding wait; @return a token for completeWait.
     * Returns 0 (and records nothing) while disabled — hooks always
     * pair registerWait/completeWait unconditionally and rely on this.
     */
    std::uint64_t registerWait(WaitKind kind, std::string waiter,
                               std::string waiterDetail, std::string owed,
                               std::string owedDetail,
                               bool reportable = true);

    /** The wait completed normally. completeWait(0) is a no-op. */
    void completeWait(std::uint64_t token);

    /**
     * Liveness of a party other waits may be owed to (proxies). A
     * party never marked alive, or marked dead on loop exit, turns a
     * chain ending at it into a dead-proxy diagnosis.
     */
    void setLiveness(const std::string& party, bool alive);

    /** Record a mid-run bandwidth fault (Fabric::degradeLink); hang
     *  reports list active degradations as context. */
    void noteDegradedLink(const std::string& linkName, double factor);

    /** Enclosing-operation labels (collective name, DSL program);
     *  registered waits inherit the innermost label. */
    void pushOp(std::string label);
    void popOp();

    /** Scheduler idle hook: schedule a report tick when reportable
     *  waits are outstanding (see class comment). */
    void onIdle();

    std::uint64_t outstandingWaits() const { return waits_.size(); }
    const std::vector<HangReport>& reports() const { return reports_; }
    void clearReports() { reports_.clear(); }

    /** Full hang file: schema "mscclpp.hang" version 1. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws Error on I/O failure. */
    void writeJson(const std::string& path) const;

  private:
    static constexpr std::size_t kMaxReports = 16;
    static constexpr std::size_t kMaxHops = 64;

    void tick();
    HangReport buildReport(WaitPoint& blocked);
    WaitPoint* oldestUnreported();
    WaitPoint* oldestWaitOf(const std::string& party,
                            const std::map<std::uint64_t, bool>& visited);

    sim::Scheduler* sched_ = nullptr;
    Tracer* tracer_ = nullptr;
    FlightRecorder* flight_ = nullptr;
    StepWindow* window_ = nullptr;

    WatchdogMode mode_ = WatchdogMode::Off;
    sim::Time threshold_ = sim::msec(100);

    std::uint64_t nextId_ = 1;
    std::map<std::uint64_t, WaitPoint> waits_; ///< keyed by id (reg order)
    std::map<std::string, bool> liveness_;
    std::map<std::string, double> degraded_;
    std::vector<std::string> opStack_;
    bool tickPending_ = false;

    std::vector<HangReport> reports_;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_WATCHDOG_HPP
