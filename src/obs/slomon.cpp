#include "obs/slomon.hpp"

#include "core/errors.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace mscclpp::obs {

namespace {

std::string
sloNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
sloUs(sim::Time t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", sim::toUs(t));
    return buf;
}

} // namespace

std::string
SloAlert::toJson() const
{
    std::string out = "{\"id\": " + std::to_string(id) +
                      ", \"dimension\": \"" + dimension + "\"";
    out += ", \"fired_at_us\": " + sloUs(firedAt);
    out += ", \"cleared_at_us\": " + sloUs(clearedAt);
    out += std::string(", \"active\": ") + (active() ? "true" : "false");
    out += ", \"fire_interval\": " + std::to_string(fireInterval);
    out += ", \"burn_fast\": " + sloNum(burnFast);
    out += ", \"burn_slow\": " + sloNum(burnSlow);
    out += ", \"replica\": " + std::to_string(blamedReplica);
    out += ", \"link\": \"" + blamedLink + "\"}";
    return out;
}

void
SloMonitor::setIntervalWidth(sim::Time w)
{
    width_ = std::max<sim::Time>(w, 1);
}

void
SloMonitor::setWindows(int fast, int slow)
{
    if (fast < 1 || slow < fast) {
        throw Error(ErrorCode::InvalidUsage,
                    "SLO monitor windows need 1 <= fast <= slow "
                    "intervals");
    }
    fast_ = fast;
    slow_ = slow;
}

void
SloMonitor::setBudget(double b)
{
    if (b <= 0.0 || b > 1.0) {
        throw Error(ErrorCode::InvalidUsage,
                    "SLO error budget must be a fraction in (0, 1]");
    }
    budget_ = b;
}

void
SloMonitor::setBurnThreshold(double t)
{
    if (t <= 0.0) {
        throw Error(ErrorCode::InvalidUsage,
                    "SLO burn-rate threshold must be positive");
    }
    threshold_ = t;
}

SloMonitor::Window
SloMonitor::windowStats(std::uint64_t from, std::uint64_t to,
                        bool ttft) const
{
    Window w;
    for (auto it = intervals_.lower_bound(from);
         it != intervals_.end() && it->first <= to; ++it) {
        const Interval& iv = it->second;
        w.total += ttft ? iv.ttftTotal : iv.tpotTotal;
        w.viol += ttft ? iv.ttftViol : iv.tpotViol;
        const auto& by =
            ttft ? iv.ttftViolByReplica : iv.tpotViolByReplica;
        for (const auto& [rep, n] : by) {
            w.violByReplica[rep] += n;
        }
    }
    return w;
}

void
SloMonitor::evaluate(bool ttft, std::uint64_t curIdx, sim::Time at)
{
    const std::uint64_t fastFrom =
        curIdx >= static_cast<std::uint64_t>(fast_ - 1)
            ? curIdx - (fast_ - 1)
            : 0;
    const std::uint64_t slowFrom =
        curIdx >= static_cast<std::uint64_t>(slow_ - 1)
            ? curIdx - (slow_ - 1)
            : 0;
    Window fast = windowStats(fastFrom, curIdx, ttft);
    const double burnFast = fast.fraction() / budget_;

    int& active = ttft ? activeTtft_ : activeTpot_;
    if (active >= 0) {
        // The fast window recovering is the clear condition: the slow
        // window deliberately lags (it is what made the fire decision
        // robust), so waiting for it too would hold alerts long after
        // the fault healed.
        if (burnFast < threshold_) {
            alerts_[active].clearedAt = at;
            active = -1;
        }
        return;
    }

    Window slow = windowStats(slowFrom, curIdx, ttft);
    const double burnSlow = slow.fraction() / budget_;
    if (burnFast < threshold_ || burnSlow < threshold_ ||
        fast.total == 0) {
        return;
    }

    SloAlert a;
    a.id = static_cast<int>(alerts_.size());
    a.dimension = ttft ? "ttft" : "tpot";
    a.firedAt = at;
    a.fireInterval = curIdx;
    a.burnFast = burnFast;
    a.burnSlow = burnSlow;
    // Blame the replica whose requests violated most inside the fast
    // window (ties break to the lowest id — deterministic).
    std::uint64_t best = 0;
    for (const auto& [rep, n] : fast.violByReplica) {
        if (n > best) {
            best = n;
            a.blamedReplica = rep;
        }
    }
    if (a.blamedReplica >= 0 && blamer_) {
        a.blamedLink = blamer_(
            a.blamedReplica,
            static_cast<sim::Time>(fastFrom) * width_, at);
    }
    active = static_cast<int>(alerts_.size());
    alerts_.push_back(std::move(a));
}

void
SloMonitor::prune(std::uint64_t curIdx)
{
    // Bounded memory: everything older than the slow window can never
    // influence another evaluation. Keep a generous multiple so the
    // dump still shows recent history around an alert.
    const std::uint64_t keep = static_cast<std::uint64_t>(slow_) * 4;
    if (curIdx <= keep) {
        return;
    }
    intervals_.erase(intervals_.begin(),
                     intervals_.lower_bound(curIdx - keep));
}

void
SloMonitor::onRequestDone(int replica, sim::Time firstTokenAt,
                          sim::Time completedAt, sim::Time ttft,
                          sim::Time tpot)
{
    if (!enabled()) {
        return;
    }
    const std::uint64_t ttftIdx =
        static_cast<std::uint64_t>(firstTokenAt) / width_;
    const std::uint64_t tpotIdx =
        static_cast<std::uint64_t>(completedAt) / width_;
    observed_++;
    Interval& tiv = intervals_[ttftIdx];
    tiv.ttftTotal++;
    if (sloTtft_ > 0 && ttft > sloTtft_) {
        tiv.ttftViol++;
        tiv.ttftViolByReplica[replica]++;
        ttftViol_++;
    }
    Interval& piv = intervals_[tpotIdx];
    piv.tpotTotal++;
    if (sloTpot_ > 0 && tpot > sloTpot_) {
        piv.tpotViol++;
        piv.tpotViolByReplica[replica]++;
        tpotViol_++;
    }
    // Completions retire in (roughly) virtual-time order, but the
    // first-token timestamps they carry do not: a long decode delivers
    // its TTFT sample long after shorter neighbours delivered later
    // ones. Samples always land in their own bucket above, but fire /
    // clear decisions only happen at each dimension's frontier — the
    // newest interval it has ever evaluated — so a straggling sample
    // from the past can re-trigger the frontier evaluation with the
    // updated data yet never rewinds an alert's timeline.
    if (ttftIdx >= ttftFrontier_) {
        ttftFrontier_ = ttftIdx;
        ttftFrontierAt_ = std::max(ttftFrontierAt_, firstTokenAt);
    }
    evaluate(/*ttft=*/true, ttftFrontier_, ttftFrontierAt_);
    if (tpotIdx >= tpotFrontier_) {
        tpotFrontier_ = tpotIdx;
        tpotFrontierAt_ = std::max(tpotFrontierAt_, completedAt);
    }
    evaluate(/*ttft=*/false, tpotFrontier_, tpotFrontierAt_);
    // Prune against the completion bucket: first-token buckets can
    // only lag it, and the lag is bounded by the decode phase.
    prune(tpotIdx);
}

void
SloMonitor::noteFault(int replica, std::string link, double factor,
                      sim::Time at)
{
    if (!enabled()) {
        return;
    }
    faults_.push_back({replica, std::move(link), factor, at});
}

std::size_t
SloMonitor::activeAlerts() const
{
    std::size_t n = 0;
    for (const SloAlert& a : alerts_) {
        n += a.active() ? 1 : 0;
    }
    return n;
}

std::string
SloMonitor::toJson() const
{
    std::string out = "{\n  \"schema\": \"mscclpp.alerts\",\n"
                      "  \"version\": 1,\n";
    out += "  \"interval_ns\": " + sloNum(sim::toNs(width_)) + ",\n";
    out += "  \"fast_intervals\": " + std::to_string(fast_) + ",\n";
    out += "  \"slow_intervals\": " + std::to_string(slow_) + ",\n";
    out += "  \"budget\": " + sloNum(budget_) + ",\n";
    out += "  \"burn_threshold\": " + sloNum(threshold_) + ",\n";
    out += "  \"slo_ttft_us\": " + sloUs(sloTtft_) + ",\n";
    out += "  \"slo_tpot_us\": " + sloUs(sloTpot_) + ",\n";
    out += "  \"requests\": " + std::to_string(observed_) + ",\n";
    out += "  \"ttft_violations\": " + std::to_string(ttftViol_) + ",\n";
    out += "  \"tpot_violations\": " + std::to_string(tpotViol_) + ",\n";
    out += "  \"fired\": " + std::to_string(alerts_.size()) + ",\n";
    out += "  \"active\": " + std::to_string(activeAlerts()) + ",\n";
    out += "  \"faults\": [";
    bool first = true;
    for (const FaultStamp& f : faults_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"replica\": " + std::to_string(f.replica) +
               ", \"link\": \"" + f.link +
               "\", \"factor\": " + sloNum(f.factor) +
               ", \"at_us\": " + sloUs(f.at) + "}";
    }
    out += first ? "],\n" : "\n  ],\n";
    out += "  \"alerts\": [";
    first = true;
    for (const SloAlert& a : alerts_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + a.toJson();
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
SloMonitor::writeJson(const std::string& path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
        throw Error(ErrorCode::SystemError,
                    "cannot open alerts file '" + path +
                        "' for writing");
    }
    f << toJson();
    if (!f.good()) {
        throw Error(ErrorCode::SystemError,
                    "failed writing alerts file '" + path + "'");
    }
}

} // namespace mscclpp::obs
