#ifndef MSCCLPP_OBS_FLIGHT_HPP
#define MSCCLPP_OBS_FLIGHT_HPP

#include "obs/window.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mscclpp::obs {

/**
 * The per-step record the flight recorder retains after the full
 * window trace is gone: the attribution buckets plus the straggler
 * and culprit-link verdicts. Small enough to keep hundreds of.
 */
struct StepDigest
{
    std::uint64_t index = 0; ///< step sequence number (0-based)
    std::string label;
    sim::Time begin = 0;
    sim::Time end = 0;
    sim::Time measured = 0;
    std::map<StepCategory, sim::Time> buckets;
    int stragglerRank = -1;
    std::string culpritLink;
    bool anomalous = false;
    double sigmas = 0.0; ///< deviation from baseline, in σ units

    std::string toJson() const;
};

/**
 * Exact sum of a set of digests. The ring is bounded, so evicted
 * digests merge into one of these; the invariant
 * `aggregate == dropped + Σ ring` holds to the picosecond — a wrapped
 * flight file still accounts for every step of the run.
 */
struct DigestAggregate
{
    std::uint64_t count = 0;
    sim::Time measured = 0;
    std::map<StepCategory, sim::Time> buckets;

    void merge(const StepDigest& d);
    bool operator==(const DigestAggregate& o) const;
    std::string toJson() const;
};

/**
 * EWMA mean/variance of measured step latency for one step label.
 * Baselines are split per label (prefill vs decode vs backend) so an
 * A/B backend switch — which legitimately changes the latency regime —
 * is compared against its own history instead of being flagged as an
 * anomaly of the other backend's baseline.
 */
struct LatencyBaseline
{
    double mean = 0.0; ///< EWMA of measured ns
    double var = 0.0;  ///< EWMA variance of measured ns
    std::uint64_t samples = 0;

    double sigmaNs() const;
    /** max(σ_ewma, 0.5% of mean): see FlightRecorder class comment. */
    double effectiveSigmaNs() const;
};

/** One triggered anomaly: the digest, the baseline it violated, and
 *  the offending window's dumped trace + critical paths. */
struct FlightAnomaly
{
    StepDigest digest;
    double baselineNs = 0.0; ///< EWMA mean at trigger time
    double sigmaNs = 0.0;    ///< effective σ the threshold used
    std::string attributionJson; ///< full StepAttribution (with links)
    std::string windowJson;      ///< window events + critical paths
};

/**
 * Continuous in-memory flight recorder over step digests
 * (MSCCLPP_FLIGHT=1): a bounded ring plus an EWMA mean/variance
 * baseline of measured step latency. A step slower than
 * mean + k·σ_eff (MSCCLPP_FLIGHT_SIGMA, default 3) is flagged online
 * and the offending window's full trace and per-collective critical
 * paths are dumped into the anomaly record — so a link degraded
 * mid-run is caught within a handful of steps with the guilty link
 * named, while healthy steps cost one digest append.
 *
 * σ_eff = max(σ_ewma, 0.5% of mean): the simulator is deterministic,
 * so identical steps have σ = 0 and a pure σ threshold would flag
 * noise-level drift (e.g. the growing KV context between decode
 * steps); the floor keeps only real latency cliffs. Anomalous samples
 * do not update the baseline (a fault must not become the new
 * normal).
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    double sigmaK() const { return k_; }
    void setSigmaK(double k) { k_ = k; }

    int warmup() const { return warmup_; }
    void setWarmup(int steps) { warmup_ = steps; }

    std::size_t capacity() const { return capacity_; }
    /** Resize the ring (drops nothing when growing; shrinking merges
     *  the oldest digests into the dropped aggregate). */
    void setCapacity(std::size_t capacity);

    /** Record one completed step (StepWindow::endStep calls this).
     *  @p events / @p edges are the step's window snapshot, consulted
     *  only when the step triggers the anomaly detector. */
    void onStep(const StepAttribution& att,
                const std::vector<TraceEvent>& events,
                const std::vector<TraceEdge>& edges);

    /** Total steps observed (ring + dropped). */
    std::uint64_t steps() const { return aggregate_.count; }

    /** Digests currently retained, oldest first. */
    std::vector<StepDigest> ring() const;

    const DigestAggregate& dropped() const { return dropped_; }
    const DigestAggregate& aggregate() const { return aggregate_; }

    std::uint64_t anomalyCount() const { return anomalyTotal_; }
    const std::vector<FlightAnomaly>& anomalies() const
    {
        return anomalies_;
    }
    const FlightAnomaly* lastAnomaly() const
    {
        return anomalies_.empty() ? nullptr : &anomalies_.back();
    }

    /**
     * Earliest anomaly whose step index is >= @p stepIndex, or
     * nullptr — the online-detection question every fault-injection
     * harness asks ("was the fault at step S flagged, and how late?").
     */
    const FlightAnomaly* firstAnomalyAtOrAfter(
        std::uint64_t stepIndex) const;

    /** Baseline for @p label, or nullptr before its first sample. */
    const LatencyBaseline* baselineFor(const std::string& label) const;
    /** All per-label baselines (label -> baseline). */
    const std::map<std::string, LatencyBaseline>& baselines() const
    {
        return baselines_;
    }

    /** Convenience accessors over the most recently recorded label
     *  (single-label runs see the classic global-baseline view). */
    double ewmaMeanNs() const;
    double ewmaSigmaNs() const;
    std::uint64_t baselineSamples() const;

    void clear();

    /** Full flight file: schema "mscclpp.flight" version 1. */
    std::string toJson() const;

    /** Write toJson() to @p path; throws Error on I/O failure. */
    void writeJson(const std::string& path) const;

    /**
     * Bounded JSON dump of a window snapshot: raw events plus the
     * critical path of every collective inside it. Shared by the
     * anomaly records here and by the watchdog's hang reports.
     */
    static std::string dumpWindowJson(const std::vector<TraceEvent>& events,
                                      const std::vector<TraceEdge>& edges);

  private:
    static constexpr std::size_t kDefaultCapacity = 256;
    static constexpr std::size_t kMaxAnomalies = 16;

    void push(StepDigest d);

    bool enabled_ = false;
    double k_ = 3.0;
    int warmup_ = 8;
    double alpha_ = 0.2; ///< EWMA smoothing factor

    std::size_t capacity_;
    std::vector<StepDigest> ring_;
    std::size_t head_ = 0;
    DigestAggregate dropped_;
    DigestAggregate aggregate_;

    std::map<std::string, LatencyBaseline> baselines_;
    std::string lastLabel_;
    std::uint64_t nextIndex_ = 0;

    std::vector<FlightAnomaly> anomalies_;
    std::uint64_t anomalyTotal_ = 0;
};

} // namespace mscclpp::obs

#endif // MSCCLPP_OBS_FLIGHT_HPP
