#include "obs/critpath.hpp"

#include <algorithm>
#include <cstdio>

namespace mscclpp::obs {

const char*
toString(PathCategory c)
{
    switch (c) {
      case PathCategory::LinkSerialization:
        return "link_serialization";
      case PathCategory::SyncWait:
        return "sync_wait";
      case PathCategory::ProxyHop:
        return "proxy_hop";
      case PathCategory::KernelCompute:
        return "kernel_compute";
      case PathCategory::LaunchOverhead:
        return "launch_overhead";
    }
    return "?";
}

sim::Time
CriticalPathReport::total() const
{
    sim::Time t = 0;
    for (const PathSegment& s : segments) {
        t += s.duration();
    }
    return t;
}

PathCategory
CriticalPathReport::dominant() const
{
    PathCategory best = PathCategory::KernelCompute;
    sim::Time bestT = 0;
    for (const auto& [cat, t] : byCategory) {
        if (t >= bestT) {
            best = cat;
            bestT = t;
        }
    }
    return best;
}

std::string
CriticalPathReport::summaryLine() const
{
    sim::Time tot = total();
    std::string out = collective + ": " + sim::formatTime(tot) + " =";
    const PathCategory cats[] = {
        PathCategory::LinkSerialization, PathCategory::SyncWait,
        PathCategory::ProxyHop, PathCategory::KernelCompute,
        PathCategory::LaunchOverhead};
    for (PathCategory c : cats) {
        auto it = byCategory.find(c);
        sim::Time t = it == byCategory.end() ? 0 : it->second;
        double pct =
            tot == 0 ? 0.0
                     : 100.0 * static_cast<double>(t) /
                           static_cast<double>(tot);
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %s %.0f%%", toString(c), pct);
        out += buf;
    }
    return out;
}

namespace {

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::string
CriticalPathReport::toJson() const
{
    std::string out = "{\"collective\": \"" + collective +
                      "\", \"window_ns\": " +
                      jsonNum(sim::toNs(end - begin)) +
                      ", \"total_ns\": " + jsonNum(sim::toNs(total())) +
                      ", \"segments\": " +
                      std::to_string(segments.size()) +
                      ", \"categories\": {";
    const PathCategory cats[] = {
        PathCategory::LinkSerialization, PathCategory::SyncWait,
        PathCategory::ProxyHop, PathCategory::KernelCompute,
        PathCategory::LaunchOverhead};
    bool first = true;
    for (PathCategory c : cats) {
        auto it = byCategory.find(c);
        sim::Time t = it == byCategory.end() ? 0 : it->second;
        out += first ? "" : ", ";
        first = false;
        out += std::string("\"") + toString(c) +
               "\": " + jsonNum(sim::toNs(t));
    }
    out += "}, \"links\": {";
    first = true;
    for (const auto& [link, t] : byLink) {
        out += first ? "" : ", ";
        first = false;
        out += "\"" + link + "\": " + jsonNum(sim::toNs(t));
    }
    out += "}, \"rank_skew_ns\": {";
    first = true;
    for (const auto& [rank, t] : rankSkew) {
        out += first ? "" : ", ";
        first = false;
        out += '"';
        out += std::to_string(rank);
        out += "\": " + jsonNum(sim::toNs(t));
    }
    out += "}}";
    return out;
}

CritPathAnalyzer::CritPathAnalyzer(std::vector<TraceEvent> events,
                                   std::vector<TraceEdge> edges)
    : events_(std::move(events)), edges_(std::move(edges))
{
    for (const TraceEvent& ev : events_) {
        if (ev.cat == Category::Collective) {
            collectives_.push_back(ev);
        }
    }
    std::stable_sort(collectives_.begin(), collectives_.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.begin < b.begin;
                     });
}

std::optional<CriticalPathReport>
CritPathAnalyzer::analyzeLast(sim::Time hostTail) const
{
    if (collectives_.empty()) {
        return std::nullopt;
    }
    return analyze(collectives_.back(), hostTail);
}

std::map<PathCategory, sim::Time>
CritPathAnalyzer::attributeAll() const
{
    std::map<PathCategory, sim::Time> sum;
    for (const TraceEvent& coll : collectives_) {
        std::optional<CriticalPathReport> rep = analyze(coll);
        if (!rep) {
            continue;
        }
        for (const auto& [cat, t] : rep->byCategory) {
            sum[cat] += t;
        }
    }
    return sum;
}

namespace {

bool
isWaitLike(const std::string& name)
{
    return name.find("wait") != std::string::npos ||
           name == "mem.readPackets";
}

bool
isLinkLike(const std::string& name)
{
    return name == "mem.put" || name == "mem.putPackets" ||
           name == "proxy.put" || name.rfind("switch.", 0) == 0;
}

} // namespace

std::optional<CriticalPathReport>
CritPathAnalyzer::analyze(const TraceEvent& coll, sim::Time hostTail) const
{
    const sim::Time w0 = coll.begin;
    const sim::Time w1 = coll.end;

    // Per-track walk index: leaf spans only. Containers (whole-block
    // spans, collective roots, executor steps) nest the leaves and
    // would shadow them; Fifo and Link spans live on side tracks whose
    // causality the edges already carry.
    std::map<TrackKey, std::vector<const TraceEvent*>> perTrack;
    const TraceEvent* straggler = nullptr;
    std::map<int, sim::Time> blockEnds;
    for (const TraceEvent& ev : events_) {
        if (ev.begin < w0 || ev.end > w1) {
            continue;
        }
        if (ev.cat == Category::Kernel && ev.name == "block") {
            if (straggler == nullptr || ev.end > straggler->end) {
                straggler = &ev;
            }
            auto [it, inserted] = blockEnds.emplace(ev.pid, ev.end);
            if (!inserted) {
                it->second = std::max(it->second, ev.end);
            }
            continue;
        }
        if (ev.cat == Category::Collective ||
            ev.cat == Category::Executor ||
            ev.cat == Category::Fifo || ev.cat == Category::Link ||
            ev.cat == Category::Step || ev.cat == Category::Request) {
            continue;
        }
        perTrack[TrackKey{ev.pid, ev.track}].push_back(&ev);
    }
    for (auto& [key, evs] : perTrack) {
        (void)key;
        std::stable_sort(evs.begin(), evs.end(),
                         [](const TraceEvent* a, const TraceEvent* b) {
                             return a->end < b->end;
                         });
    }
    if (straggler == nullptr && perTrack.empty()) {
        return std::nullopt;
    }

    // Causal-edge indexes, each sorted by destination time.
    std::map<TrackKey, std::vector<const TraceEdge*>> signalByDst;
    std::map<TrackKey, std::vector<const TraceEdge*>> launchByDst;
    std::map<std::pair<int, int>, std::vector<const TraceEdge*>> hopByChan;
    for (const TraceEdge& e : edges_) {
        if (e.dstTime < w0 || e.dstTime > w1) {
            continue;
        }
        switch (e.kind) {
          case EdgeKind::Signal:
            signalByDst[TrackKey{e.dstPid, e.dstTrack}].push_back(&e);
            break;
          case EdgeKind::Launch:
            launchByDst[TrackKey{e.dstPid, e.dstTrack}].push_back(&e);
            break;
          case EdgeKind::FifoHop:
            hopByChan[{e.channelId, e.srcPid}].push_back(&e);
            break;
          case EdgeKind::LinkDelivery:
            break; // informational; span details carry link names
          case EdgeKind::Dispatch:
            break; // request->step annotation, never on a comm path
        }
    }
    auto sortEdges = [](auto& index) {
        for (auto& [key, v] : index) {
            (void)key;
            std::stable_sort(
                v.begin(), v.end(),
                [](const TraceEdge* a, const TraceEdge* b) {
                    return a->dstTime < b->dstTime;
                });
        }
    };
    sortEdges(signalByDst);
    sortEdges(launchByDst);
    sortEdges(hopByChan);

    // Latest edge in @p index under @p key with dstTime <= t.
    auto latestEdge = [](const auto& index, const auto& key,
                         sim::Time t) -> const TraceEdge* {
        auto it = index.find(key);
        if (it == index.end()) {
            return nullptr;
        }
        const TraceEdge* best = nullptr;
        for (const TraceEdge* e : it->second) {
            if (e->dstTime > t) {
                break;
            }
            best = e;
        }
        return best;
    };

    // Latest leaf span on @p key ending at or before @p t (zero-length
    // spans exactly at t are skipped: they cannot explain any time).
    auto latestEvent = [&perTrack](const TrackKey& key,
                                   sim::Time t) -> const TraceEvent* {
        auto it = perTrack.find(key);
        if (it == perTrack.end()) {
            return nullptr;
        }
        const std::vector<const TraceEvent*>& evs = it->second;
        for (auto rit = evs.rbegin(); rit != evs.rend(); ++rit) {
            const TraceEvent* ev = *rit;
            if (ev->end > t) {
                continue;
            }
            if (ev->end == t && ev->begin == t) {
                continue;
            }
            return ev;
        }
        return nullptr;
    };

    CriticalPathReport rep;
    rep.collective = coll.name;
    rep.begin = w0;
    rep.end = w1;

    sim::Time lastBlockEnd = straggler != nullptr ? straggler->end : w1;
    for (const auto& [rank, end] : blockEnds) {
        rep.rankSkew[rank] = lastBlockEnd - end;
    }

    std::vector<PathSegment> backward;
    auto attribute = [&backward, &rep](PathCategory cat, sim::Time a,
                                       sim::Time b, int pid,
                                       const std::string& track,
                                       std::string what) {
        if (b <= a) {
            return;
        }
        backward.push_back(
            PathSegment{cat, a, b, pid, track, std::move(what)});
        rep.byCategory[cat] += b - a;
    };

    auto gapCategory = [](const TrackKey& key) {
        if (key.pid == kHostPid || key.track == "launch") {
            return PathCategory::LaunchOverhead;
        }
        if (key.track.rfind("proxy", 0) == 0) {
            return PathCategory::ProxyHop;
        }
        return PathCategory::KernelCompute;
    };

    TrackKey cur;
    sim::Time t = w1;
    if (straggler != nullptr) {
        attribute(PathCategory::LaunchOverhead, straggler->end, w1,
                  kHostPid, coll.track, "(drain)");
        cur = TrackKey{straggler->pid, straggler->track};
        t = straggler->end;
    } else {
        cur = perTrack.begin()->first;
    }

    const std::size_t maxIter = events_.size() * 4 + 64;
    std::size_t iter = 0;
    while (t > w0 && ++iter < maxIter) {
        const TraceEvent* ev = latestEvent(cur, t);
        if (ev == nullptr) {
            // Nothing earlier on this track: a thread block's start
            // chains back to its launch; anything else is untraced.
            const TraceEdge* launch =
                latestEdge(launchByDst, cur, t);
            if (launch != nullptr && cur.track.rfind("tb", 0) == 0) {
                attribute(PathCategory::KernelCompute, launch->dstTime,
                          t, cur.pid, cur.track, "(pre-op compute)");
                attribute(PathCategory::LaunchOverhead, launch->srcTime,
                          launch->dstTime, cur.pid, cur.track,
                          "(block dispatch)");
                cur = TrackKey{launch->srcPid, launch->srcTrack};
                t = launch->srcTime;
                continue;
            }
            attribute(gapCategory(cur), w0, t, cur.pid, cur.track,
                      "(untraced)");
            t = w0;
            break;
        }
        if (ev->end < t) {
            // Idle gap between traced ops: on a thread-block track
            // that is untraced device compute, on a proxy track the
            // dispatch cost, on host tracks launch overhead.
            attribute(gapCategory(cur), ev->end, t, cur.pid, cur.track,
                      "(gap)");
            t = ev->end;
            continue;
        }

        // ev->end == t: this span is the last thing that completed
        // here. Attribute it and follow its causal dependency.
        if (isWaitLike(ev->name)) {
            const TraceEdge* sig = latestEdge(signalByDst, cur, t);
            if (sig != nullptr && sig->dstTime > ev->begin &&
                sig->srcTime >= ev->begin) {
                // The binding cause is the remote signaler: charge
                // signal propagation + poll, then continue there.
                attribute(PathCategory::SyncWait, sig->srcTime, t,
                          cur.pid, cur.track, ev->name);
                cur = TrackKey{sig->srcPid, sig->srcTrack};
                t = sig->srcTime;
                continue;
            }
            attribute(PathCategory::SyncWait, ev->begin, t, cur.pid,
                      cur.track, ev->name);
            t = ev->begin;
            continue;
        }

        PathCategory cat = PathCategory::KernelCompute;
        if (isLinkLike(ev->name)) {
            cat = PathCategory::LinkSerialization;
            const std::string& link =
                ev->detail.empty() ? ev->name : ev->detail;
            rep.byLink[link] += ev->end - ev->begin;
        } else if (ev->cat == Category::Proxy ||
                   ev->name.rfind("port.", 0) == 0 ||
                   ev->name.rfind("fifo", 0) == 0) {
            cat = PathCategory::ProxyHop;
        } else if (ev->name.find("launch") != std::string::npos) {
            cat = PathCategory::LaunchOverhead;
        } else if (ev->name == "mem.signal") {
            cat = PathCategory::SyncWait;
        }
        attribute(cat, ev->begin, t,  cur.pid, cur.track,
                  ev->detail.empty() ? ev->name
                                     : ev->name + " " + ev->detail);
        t = ev->begin;

        if (ev->cat == Category::Proxy) {
            // A proxy-side span chains back either to the previous
            // request on this proxy (it was busy) or through the FIFO
            // hop to the device block that pushed this request —
            // whichever completed later binds.
            const TraceEdge* hop = latestEdge(
                hopByChan, std::make_pair(ev->channelId, ev->pid), t);
            const TraceEvent* prev = latestEvent(cur, t);
            if (hop != nullptr &&
                (prev == nullptr || prev->end < hop->dstTime) &&
                hop->srcTime < t) {
                attribute(PathCategory::ProxyHop, hop->dstTime, t,
                          cur.pid, cur.track, "(dispatch)");
                attribute(PathCategory::ProxyHop, hop->srcTime,
                          hop->dstTime, cur.pid, cur.track,
                          "(fifo hop)");
                cur = TrackKey{hop->srcPid, hop->srcTrack};
                t = hop->srcTime;
            }
        }
    }
    if (t > w0) {
        // Iteration guard tripped (malformed hand-built trace):
        // attribute the remainder so totals still reconcile.
        attribute(gapCategory(cur), w0, t, cur.pid, cur.track,
                  "(unresolved)");
    }

    if (hostTail > 0) {
        backward.insert(backward.begin(),
                        PathSegment{PathCategory::LaunchOverhead, w1,
                                    w1 + hostTail, kHostPid, coll.track,
                                    "(host sync)"});
        rep.byCategory[PathCategory::LaunchOverhead] += hostTail;
    }

    rep.segments.assign(backward.rbegin(), backward.rend());
    return rep;
}

} // namespace mscclpp::obs
