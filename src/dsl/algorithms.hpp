#ifndef MSCCLPP_DSL_ALGORITHMS_HPP
#define MSCCLPP_DSL_ALGORITHMS_HPP

#include "dsl/program.hpp"

#include <cstddef>

namespace mscclpp::dsl {

/**
 * Collective algorithms authored in the DSL (Section 4.3 / 4.4).
 * Every builder returns a lowered (optimize()d) program over
 * @p numRanks GPUs operating on the first @p bytes of each rank's
 * data buffer.
 */

/** The all-pairs ReduceScatter of Figure 5. */
Program buildAllPairsReduceScatter(int numRanks, std::size_t bytes);

/** One-phase all-pairs AllReduce, LL protocol (small messages). */
Program buildAllPairs1PAllReduce(int numRanks, std::size_t bytes);

/** Two-phase all-pairs AllReduce, LL packets. */
Program buildAllPairs2PAllReduceLL(int numRanks, std::size_t bytes);

/** Two-phase all-pairs AllReduce, HB MemoryChannel. */
Program buildAllPairs2PAllReduceHB(int numRanks, std::size_t bytes);

/** Two-phase all-pairs AllReduce over PortChannels (DMA copy). */
Program buildAllPairs2PAllReducePort(int numRanks, std::size_t bytes);

/**
 * The SwitchChannel AllReduce of Section 5.3 — the algorithm the
 * paper implements in 15 lines of DSL code: every rank ld_reduces its
 * shard through the switch and multicasts the result back.
 */
Program buildSwitchAllReduce(int numRanks, std::size_t bytes);

/** All-pairs AllGather (HB), shard per rank. */
Program buildAllPairsAllGather(int numRanks, std::size_t shardBytes);

/** All-pairs AllGather with LL packets + unpack. */
Program buildAllPairsAllGatherLL(int numRanks, std::size_t shardBytes);

/** Ring AllReduce (for completeness / ablations; HB). */
Program buildRingAllReduce(int numRanks, std::size_t bytes);

/**
 * Sequential hierarchical AllReduce for multi-node machines: local
 * ReduceScatter, cross-node exchange, local AllGather, separated by
 * global barriers (the pipelined variant lives in the hand-written
 * collective kernels).
 */
Program buildHierAllReduce(int numRanks, int gpusPerNode,
                           std::size_t bytes);

} // namespace mscclpp::dsl

#endif // MSCCLPP_DSL_ALGORITHMS_HPP
