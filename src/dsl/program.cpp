#include "dsl/program.hpp"

#include "core/errors.hpp"

#include <algorithm>

namespace mscclpp::dsl {

const char*
toString(OpCode op)
{
    switch (op) {
      case OpCode::Put:
        return "put";
      case OpCode::PutWithSignal:
        return "putWithSignal";
      case OpCode::Signal:
        return "signal";
      case OpCode::Wait:
        return "wait";
      case OpCode::PutPackets:
        return "putPackets";
      case OpCode::ReadPackets:
        return "readPackets";
      case OpCode::PortPut:
        return "portPut";
      case OpCode::PortWait:
        return "portWait";
      case OpCode::PortFlush:
        return "portFlush";
      case OpCode::ReduceLocal:
        return "reduce";
      case OpCode::CopyLocal:
        return "copy";
      case OpCode::Barrier:
        return "barrier";
      case OpCode::GridBarrier:
        return "gridBarrier";
      case OpCode::SwitchReduce:
        return "switchReduce";
      case OpCode::SwitchBroadcast:
        return "switchBroadcast";
    }
    return "?";
}

std::string
Instr::describe() const
{
    std::string s = toString(op);
    if (peer >= 0) {
        s += " peer=" + std::to_string(peer);
    }
    s += " tb=" + std::to_string(tb);
    if (src.bytes > 0) {
        s += " src=" +
             std::string(src.kind == BufKind::Input ? "in" : "scratch") +
             "+" + std::to_string(src.offset) + ":" +
             std::to_string(src.bytes);
    }
    if (dst.bytes > 0) {
        s += " dst=" +
             std::string(dst.kind == BufKind::Input ? "in" : "scratch") +
             "+" + std::to_string(dst.offset) + ":" +
             std::to_string(dst.bytes);
    }
    return s;
}

RankBuilder&
RankBuilder::emit(Instr in)
{
    in.tb = tb_;
    program_->instrs_.at(rank_).push_back(in);
    return *this;
}

RankBuilder&
RankBuilder::put(int peer, BufRef src, BufRef dst)
{
    Instr in;
    in.op = OpCode::Put;
    in.peer = peer;
    in.src = src;
    in.dst = dst;
    return emit(in);
}

RankBuilder&
RankBuilder::signal(int peer, BufKind space)
{
    Instr in;
    in.op = OpCode::Signal;
    in.peer = peer;
    in.dst.kind = space;
    return emit(in);
}

RankBuilder&
RankBuilder::wait(int peer, BufKind space)
{
    Instr in;
    in.op = OpCode::Wait;
    in.peer = peer;
    in.dst.kind = space;
    return emit(in);
}

RankBuilder&
RankBuilder::putPackets(int peer, BufRef src, BufRef dst)
{
    Instr in;
    in.op = OpCode::PutPackets;
    in.peer = peer;
    in.src = src;
    in.dst = dst;
    return emit(in);
}

RankBuilder&
RankBuilder::readPackets(int peer)
{
    Instr in;
    in.op = OpCode::ReadPackets;
    in.peer = peer;
    return emit(in);
}

RankBuilder&
RankBuilder::portPut(int peer, BufRef src, BufRef dst, bool withSignal)
{
    Instr in;
    in.op = OpCode::PortPut;
    in.peer = peer;
    in.src = src;
    in.dst = dst;
    in.fusedSignal = withSignal;
    return emit(in);
}

RankBuilder&
RankBuilder::portWait(int peer, BufKind space)
{
    Instr in;
    in.op = OpCode::PortWait;
    in.peer = peer;
    in.dst.kind = space;
    return emit(in);
}

RankBuilder&
RankBuilder::portFlush(int peer)
{
    Instr in;
    in.op = OpCode::PortFlush;
    in.peer = peer;
    return emit(in);
}

RankBuilder&
RankBuilder::reduce(BufRef dst, BufRef src)
{
    Instr in;
    in.op = OpCode::ReduceLocal;
    in.src = src;
    in.dst = dst;
    return emit(in);
}

RankBuilder&
RankBuilder::copy(BufRef dst, BufRef src)
{
    Instr in;
    in.op = OpCode::CopyLocal;
    in.src = src;
    in.dst = dst;
    return emit(in);
}

RankBuilder&
RankBuilder::barrier()
{
    Instr in;
    in.op = OpCode::Barrier;
    return emit(in);
}

RankBuilder&
RankBuilder::gridBarrier()
{
    Instr in;
    in.op = OpCode::GridBarrier;
    return emit(in);
}

RankBuilder&
RankBuilder::switchReduce(BufRef range)
{
    Instr in;
    in.op = OpCode::SwitchReduce;
    in.src = range;
    in.dst = range;
    return emit(in);
}

RankBuilder&
RankBuilder::switchBroadcast(BufRef range)
{
    Instr in;
    in.op = OpCode::SwitchBroadcast;
    in.src = range;
    in.dst = range;
    return emit(in);
}

Program::Program(std::string name, int numRanks)
    : name_(std::move(name)), numRanks_(numRanks)
{
    if (numRanks < 2) {
        throw Error(ErrorCode::InvalidUsage,
                    "a program needs at least two ranks");
    }
    instrs_.resize(numRanks);
}

RankBuilder
Program::onRank(int rank)
{
    if (rank < 0 || rank >= numRanks_) {
        throw Error(ErrorCode::InvalidUsage, "rank out of range");
    }
    return RankBuilder(*this, rank);
}

std::size_t
Program::totalInstructions() const
{
    std::size_t total = 0;
    for (const auto& v : instrs_) {
        total += v.size();
    }
    return total;
}

int
Program::numThreadBlocks() const
{
    int maxTb = 0;
    for (const auto& v : instrs_) {
        for (const Instr& in : v) {
            maxTb = std::max(maxTb, in.tb);
        }
    }
    return maxTb + 1;
}

bool
Program::usesSwitch() const
{
    for (const auto& v : instrs_) {
        for (const Instr& in : v) {
            if (in.op == OpCode::SwitchReduce ||
                in.op == OpCode::SwitchBroadcast) {
                return true;
            }
        }
    }
    return false;
}

bool
Program::usesPort() const
{
    for (const auto& v : instrs_) {
        for (const Instr& in : v) {
            if (in.op == OpCode::PortPut || in.op == OpCode::PortFlush) {
                return true;
            }
        }
    }
    return false;
}

std::size_t
Program::fusePutSignal()
{
    std::size_t fused = 0;
    for (auto& v : instrs_) {
        std::vector<Instr> out;
        out.reserve(v.size());
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i + 1 < v.size() && v[i].op == OpCode::Put &&
                v[i + 1].op == OpCode::Signal &&
                v[i].peer == v[i + 1].peer && v[i].tb == v[i + 1].tb) {
                Instr in = v[i];
                in.op = OpCode::PutWithSignal;
                out.push_back(in);
                ++i;
                ++fused;
            } else {
                out.push_back(v[i]);
            }
        }
        v = std::move(out);
    }
    return fused;
}

std::size_t
Program::batchSignals()
{
    // In a run of instructions on one tb addressed to one peer that
    // contains multiple Signals separated only by Puts, keep the last
    // Signal: put ordering makes earlier ones redundant.
    std::size_t removed = 0;
    for (auto& v : instrs_) {
        std::vector<Instr> out;
        out.reserve(v.size());
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (v[i].op == OpCode::Signal) {
                // Look ahead: same-peer same-tb signal later with only
                // puts to that peer in between?
                bool redundant = false;
                for (std::size_t j = i + 1; j < v.size(); ++j) {
                    if (v[j].tb != v[i].tb || v[j].peer != v[i].peer ||
                        (v[j].op != OpCode::Put &&
                         v[j].op != OpCode::Signal)) {
                        break;
                    }
                    if (v[j].op == OpCode::Signal) {
                        redundant = true;
                        break;
                    }
                }
                if (redundant) {
                    ++removed;
                    continue;
                }
            }
            out.push_back(v[i]);
        }
        v = std::move(out);
    }
    return removed;
}

std::size_t
Program::dedupBarriers()
{
    std::size_t removed = 0;
    for (auto& v : instrs_) {
        std::vector<Instr> out;
        out.reserve(v.size());
        for (const Instr& in : v) {
            if (in.op == OpCode::Barrier && !out.empty() &&
                out.back().op == OpCode::Barrier &&
                out.back().tb == in.tb) {
                ++removed;
                continue;
            }
            out.push_back(in);
        }
        v = std::move(out);
    }
    return removed;
}

std::size_t
Program::optimize()
{
    // batchSignals() is opt-in: it changes how many signals the peer
    // observes, so the author must have written matching waits.
    return fusePutSignal() + dedupBarriers();
}

} // namespace mscclpp::dsl
