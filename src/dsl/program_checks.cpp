#include "dsl/program.hpp"

#include "core/errors.hpp"

#include <map>
#include <sstream>

namespace mscclpp::dsl {

namespace {

bool
isSignalOp(OpCode op)
{
    return op == OpCode::Signal || op == OpCode::PutWithSignal ||
           op == OpCode::PutPackets;
}

bool
isWaitOp(OpCode op)
{
    return op == OpCode::Wait || op == OpCode::ReadPackets;
}

const char*
kindName(BufKind k)
{
    return k == BufKind::Input ? "in" : "scratch";
}

} // namespace

std::vector<std::string>
Program::validate(std::size_t dataBytes, std::size_t scratchBytes) const
{
    std::vector<std::string> problems;
    auto complain = [&](const std::string& msg) {
        problems.push_back(msg);
    };

    // (src, dst, space) -> signal count; (dst, src, space) -> waits.
    std::map<std::tuple<int, int, int>, long> signals;
    std::map<std::tuple<int, int, int>, long> waits;
    std::map<std::tuple<int, int>, long> portSignals;
    std::map<std::tuple<int, int>, long> portWaits;
    std::vector<long> barriers(numRanks_, 0);

    auto checkRange = [&](int rank, const BufRef& ref, const Instr& in) {
        if (ref.bytes == 0) {
            return;
        }
        std::size_t cap =
            ref.kind == BufKind::Input ? dataBytes : scratchBytes;
        if (ref.offset + ref.bytes > cap) {
            std::ostringstream os;
            os << "rank " << rank << ": " << in.describe()
               << " exceeds " << kindName(ref.kind) << " capacity "
               << cap;
            complain(os.str());
        }
    };

    for (int r = 0; r < numRanks_; ++r) {
        std::map<int, long> gridBarriersPerTb;
        std::map<int, bool> tbSeen;
        for (const Instr& in : instrs_[r]) {
            tbSeen[in.tb] = true;
            if (in.peer == r) {
                complain("rank " + std::to_string(r) +
                         ": instruction addresses itself: " +
                         in.describe());
            }
            bool needsPeer =
                in.op != OpCode::ReduceLocal &&
                in.op != OpCode::CopyLocal && in.op != OpCode::Barrier &&
                in.op != OpCode::GridBarrier &&
                in.op != OpCode::SwitchReduce &&
                in.op != OpCode::SwitchBroadcast;
            if (needsPeer && (in.peer < 0 || in.peer >= numRanks_)) {
                complain("rank " + std::to_string(r) +
                         ": peer out of range: " + in.describe());
                continue;
            }
            checkRange(r, in.src, in);
            if (in.op != OpCode::Wait && in.op != OpCode::PortWait &&
                in.op != OpCode::Signal) {
                checkRange(r, in.dst, in);
            }

            if (isSignalOp(in.op)) {
                int space = static_cast<int>(
                    in.op == OpCode::PutPackets ? BufKind::Scratch
                                                : in.dst.kind);
                ++signals[{r, in.peer, space}];
            }
            if (isWaitOp(in.op)) {
                int space = static_cast<int>(
                    in.op == OpCode::ReadPackets ? BufKind::Scratch
                                                 : in.dst.kind);
                ++waits[{in.peer, r, space}];
            }
            if (in.op == OpCode::PortPut && in.fusedSignal) {
                ++portSignals[{r, in.peer}];
            }
            if (in.op == OpCode::PortWait) {
                ++portWaits[{in.peer, r}];
            }
            if (in.op == OpCode::Barrier) {
                ++barriers[r];
            }
            if (in.op == OpCode::GridBarrier) {
                ++gridBarriersPerTb[in.tb];
            }
        }
        // Grid barriers must be emitted by every thread block of the
        // rank the same number of times, or the kernel deadlocks.
        long expected = -1;
        for (const auto& [tb, seen] : tbSeen) {
            long count = gridBarriersPerTb.count(tb)
                             ? gridBarriersPerTb[tb]
                             : 0;
            if (expected < 0) {
                expected = count;
            } else if (count != expected) {
                complain("rank " + std::to_string(r) +
                         ": thread blocks disagree on gridBarrier "
                         "count (" +
                         std::to_string(count) + " vs " +
                         std::to_string(expected) + ")");
                break;
            }
        }
    }

    for (int r = 1; r < numRanks_; ++r) {
        if (barriers[r] != barriers[0]) {
            complain("barrier count differs: rank 0 has " +
                     std::to_string(barriers[0]) + ", rank " +
                     std::to_string(r) + " has " +
                     std::to_string(barriers[r]));
        }
    }
    for (const auto& [key, count] : signals) {
        auto [src, dst, space] = key;
        long w = waits.count(key) ? waits.at(key) : 0;
        if (w != count) {
            std::ostringstream os;
            os << "memory channel " << src << "->" << dst << " ("
               << kindName(static_cast<BufKind>(space)) << "): " << count
               << " signal(s) but " << w << " wait(s)";
            complain(os.str());
        }
    }
    for (const auto& [key, w] : waits) {
        if (signals.count(key) == 0) {
            auto [src, dst, space] = key;
            std::ostringstream os;
            os << "memory channel " << src << "->" << dst << " ("
               << kindName(static_cast<BufKind>(space)) << "): " << w
               << " wait(s) but no signals";
            complain(os.str());
        }
    }
    for (const auto& [key, count] : portSignals) {
        long w = portWaits.count(key) ? portWaits.at(key) : 0;
        if (w != count) {
            complain("port channel " + std::to_string(std::get<0>(key)) +
                     "->" + std::to_string(std::get<1>(key)) + ": " +
                     std::to_string(count) + " signal(s) but " +
                     std::to_string(w) + " wait(s)");
        }
    }
    return problems;
}

// ---------------------------------------------------------------------------
// Serialization: the algorithm-file analogue of MSCCL's XML plans.
// ---------------------------------------------------------------------------

std::string
Program::serialize() const
{
    std::ostringstream os;
    os << "mscclpp-dsl v1 " << numRanks_ << " " << name_ << "\n";
    for (int r = 0; r < numRanks_; ++r) {
        for (const Instr& in : instrs_[r]) {
            os << r << " " << in.tb << " " << static_cast<int>(in.op)
               << " " << in.peer << " " << static_cast<int>(in.src.kind)
               << " " << in.src.offset << " " << in.src.bytes << " "
               << static_cast<int>(in.dst.kind) << " " << in.dst.offset
               << " " << in.dst.bytes << " " << (in.fusedSignal ? 1 : 0)
               << "\n";
        }
    }
    return os.str();
}

Program
Program::deserialize(const std::string& text)
{
    std::istringstream is(text);
    std::string magic;
    std::string version;
    int ranks = 0;
    std::string name;
    is >> magic >> version >> ranks;
    std::getline(is, name);
    if (magic != "mscclpp-dsl" || version != "v1" || ranks < 2) {
        throw Error(ErrorCode::InvalidUsage,
                    "not a mscclpp-dsl v1 program");
    }
    if (!name.empty() && name.front() == ' ') {
        name.erase(name.begin());
    }
    Program p(name, ranks);
    int rank = 0;
    Instr in;
    int op = 0;
    int srcKind = 0;
    int dstKind = 0;
    int fused = 0;
    while (is >> rank >> in.tb >> op >> in.peer >> srcKind >>
           in.src.offset >> in.src.bytes >> dstKind >> in.dst.offset >>
           in.dst.bytes >> fused) {
        if (rank < 0 || rank >= ranks) {
            throw Error(ErrorCode::InvalidUsage,
                        "instruction rank out of range");
        }
        in.op = static_cast<OpCode>(op);
        in.src.kind = static_cast<BufKind>(srcKind);
        in.dst.kind = static_cast<BufKind>(dstKind);
        in.fusedSignal = fused != 0;
        p.instrs_[rank].push_back(in);
    }
    return p;
}

} // namespace mscclpp::dsl
