#ifndef MSCCLPP_DSL_IR_HPP
#define MSCCLPP_DSL_IR_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace mscclpp::dsl {

/**
 * Instruction set of the MSCCL++ DSL executor. Each op maps onto one
 * Primitive-API call (Section 4.3); the executor interprets them
 * back-to-back with a small per-instruction decode cost.
 */
enum class OpCode
{
    Put,           ///< MemoryChannel::put (HB)
    PutWithSignal, ///< fused put + signal
    Signal,        ///< MemoryChannel/PortChannel::signal
    Wait,          ///< wait for one inbound signal from peer
    PutPackets,    ///< LL packet write (self-synchronising)
    ReadPackets,   ///< LL packet wait
    PortPut,       ///< PortChannel::put (+signal when fused)
    PortWait,      ///< wait for a PortChannel signal
    PortFlush,     ///< PortChannel::flush
    ReduceLocal,   ///< dst op= src on the local GPU
    CopyLocal,     ///< dst = src on the local GPU
    Barrier,       ///< cross-GPU barrier over all ranks
    GridBarrier,   ///< barrier across this rank's thread blocks
    SwitchReduce,  ///< multimem ld_reduce of a shard
    SwitchBroadcast, ///< multimem st of a shard
};

const char* toString(OpCode op);

/** Which per-rank buffer a reference addresses. */
enum class BufKind
{
    Input,   ///< the user's registered data buffer
    Scratch, ///< the executor's scratch allocation
};

/** A byte range inside one rank's buffer space. */
struct BufRef
{
    BufKind kind = BufKind::Input;
    std::size_t offset = 0;
    std::size_t bytes = 0;
};

/** One DSL instruction, already bound to a rank and thread block. */
struct Instr
{
    OpCode op;
    int peer = -1; ///< remote rank for channel ops (-1 for local ops)
    BufRef src;
    BufRef dst;
    int tb = 0;            ///< thread block executing this instruction
    bool fusedSignal = false; ///< PortPut: enqueue a signal right after

    std::string describe() const;
};

} // namespace mscclpp::dsl

#endif // MSCCLPP_DSL_IR_HPP
