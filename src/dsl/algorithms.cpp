#include "dsl/algorithms.hpp"

#include "core/errors.hpp"

namespace mscclpp::dsl {

namespace {

BufRef
in(std::size_t off, std::size_t bytes)
{
    return BufRef{BufKind::Input, off, bytes};
}

BufRef
scr(std::size_t off, std::size_t bytes)
{
    return BufRef{BufKind::Scratch, off, bytes};
}

void
requireShard(std::size_t bytes, int parts)
{
    if (parts < 2 || bytes % (static_cast<std::size_t>(parts) * 16) != 0) {
        throw Error(ErrorCode::InvalidUsage,
                    "size must shard evenly over the ranks");
    }
}

} // namespace

Program
buildAllPairsReduceScatter(int n, std::size_t bytes)
{
    requireShard(bytes, n);
    const std::size_t shard = bytes / n;
    Program p("allpairs-reducescatter", n);
    for (int r = 0; r < n; ++r) {
        // Send 1/Nth of local data to every other GPU's scratch
        // (Figure 5, lines 7-10), one thread block per peer.
        for (int b = 0; b < n - 1; ++b) {
            int peer = (r + 1 + b) % n;
            p.onRank(r)
                .threadBlock(b)
                .put(peer, in(peer * shard, shard),
                     scr(r * shard, shard))
                .signal(peer, BufKind::Scratch)
                .wait(peer, BufKind::Scratch)
                .gridBarrier();
        }
        // Reduce every pair (lines 13-15).
        auto rb = p.onRank(r).threadBlock(0);
        for (int src = 0; src < n; ++src) {
            if (src != r) {
                rb.reduce(in(r * shard, shard), scr(src * shard, shard));
            }
        }
        // Barrier on all GPUs so scratch can be reused (line 18).
        rb.barrier();
        for (int b = 0; b < n - 1; ++b) {
            p.onRank(r).threadBlock(b).gridBarrier();
        }
    }
    p.optimize();
    return p;
}

Program
buildAllPairs1PAllReduce(int n, std::size_t bytes)
{
    // Executor-level scratch rotation makes a trailing barrier
    // unnecessary, exactly like the hand-written kernels.
    Program p("1PA-allreduce", n);
    for (int r = 0; r < n; ++r) {
        for (int b = 0; b < n - 1; ++b) {
            int peer = (r + 1 + b) % n;
            p.onRank(r)
                .threadBlock(b)
                .putPackets(peer, in(0, bytes), scr(r * bytes, bytes))
                .readPackets(peer)
                .reduce(in(0, bytes), scr(peer * bytes, bytes))
                .gridBarrier();
        }
    }
    p.optimize();
    return p;
}

namespace {

/** Shared two-phase skeleton; emitPhase1/2 are channel-specific.
 *  Every block folds its own peer's contribution in (the concurrent
 *  reduction of Section 4.4) and the grid barrier separates phases. */
template <typename Phase1, typename Phase2>
Program
twoPhase(const char* name, int n, std::size_t bytes, Phase1 phase1,
         Phase2 phase2)
{
    Program p(name, n);
    const std::size_t shard = bytes / n;
    for (int r = 0; r < n; ++r) {
        for (int b = 0; b < n - 1; ++b) {
            int peer = (r + 1 + b) % n;
            phase1(p.onRank(r).threadBlock(b), r, peer, shard);
            p.onRank(r)
                .threadBlock(b)
                .reduce(in(r * shard, shard), scr(peer * shard, shard))
                .gridBarrier();
        }
        for (int b = 0; b < n - 1; ++b) {
            int peer = (r + 1 + b) % n;
            phase2(p.onRank(r).threadBlock(b), r, peer, shard);
        }
    }
    p.optimize();
    return p;
}

} // namespace

Program
buildAllPairs2PAllReduceHB(int n, std::size_t bytes)
{
    requireShard(bytes, n);
    return twoPhase(
        "2PA-HB-allreduce", n, bytes,
        [](RankBuilder rb, int r, int peer, std::size_t shard) {
            rb.put(peer, in(peer * shard, shard), scr(r * shard, shard))
                .signal(peer, BufKind::Scratch)
                .wait(peer, BufKind::Scratch);
        },
        [](RankBuilder rb, int r, int peer, std::size_t shard) {
            rb.put(peer, in(r * shard, shard), in(r * shard, shard))
                .signal(peer, BufKind::Input)
                .wait(peer, BufKind::Input);
        });
}

Program
buildAllPairs2PAllReducePort(int n, std::size_t bytes)
{
    requireShard(bytes, n);
    return twoPhase(
        "2PA-Port-allreduce", n, bytes,
        [](RankBuilder rb, int r, int peer, std::size_t shard) {
            rb.portPut(peer, in(peer * shard, shard),
                       scr(r * shard, shard))
                .portWait(peer, BufKind::Scratch);
        },
        [](RankBuilder rb, int r, int peer, std::size_t shard) {
            rb.portPut(peer, in(r * shard, shard), in(r * shard, shard))
                .portWait(peer, BufKind::Input);
        });
}

Program
buildAllPairs2PAllReduceLL(int n, std::size_t bytes)
{
    requireShard(bytes, n);
    const std::size_t shard = bytes / n;
    const std::size_t region1 = static_cast<std::size_t>(n) * shard;
    Program p("2PA-LL-allreduce", n);
    for (int r = 0; r < n; ++r) {
        for (int b = 0; b < n - 1; ++b) {
            int peer = (r + 1 + b) % n;
            p.onRank(r)
                .threadBlock(b)
                .putPackets(peer, in(peer * shard, shard),
                            scr(r * shard, shard))
                .readPackets(peer)
                .reduce(in(r * shard, shard), scr(peer * shard, shard))
                .gridBarrier();
        }
        for (int b = 0; b < n - 1; ++b) {
            int peer = (r + 1 + b) % n;
            p.onRank(r)
                .threadBlock(b)
                .putPackets(peer, in(r * shard, shard),
                            scr(region1 + r * shard, shard))
                .readPackets(peer)
                .copy(in(peer * shard, shard),
                      scr(region1 + peer * shard, shard));
        }
    }
    p.optimize();
    return p;
}

Program
buildSwitchAllReduce(int n, std::size_t bytes)
{
    requireShard(bytes, n);
    const std::size_t shard = bytes / n;
    Program p("switch-allreduce", n);
    // The whole algorithm: ld_reduce my shard through the switch,
    // multicast the result back, barrier. (The paper's version is 15
    // lines of Python; this is the same logic.)
    for (int r = 0; r < n; ++r) {
        p.onRank(r)
            .threadBlock(0)
            .switchReduce(in(r * shard, shard))
            .switchBroadcast(in(r * shard, shard))
            .barrier();
    }
    return p;
}

Program
buildAllPairsAllGather(int n, std::size_t shard)
{
    Program p("allpairs-allgather", n);
    for (int r = 0; r < n; ++r) {
        for (int b = 0; b < n - 1; ++b) {
            int peer = (r + 1 + b) % n;
            p.onRank(r)
                .threadBlock(b)
                .put(peer, in(r * shard, shard), in(r * shard, shard))
                .signal(peer, BufKind::Input)
                .wait(peer, BufKind::Input);
        }
    }
    p.optimize();
    return p;
}

Program
buildAllPairsAllGatherLL(int n, std::size_t shard)
{
    Program p("allpairs-allgather-ll", n);
    for (int r = 0; r < n; ++r) {
        for (int b = 0; b < n - 1; ++b) {
            int peer = (r + 1 + b) % n;
            p.onRank(r)
                .threadBlock(b)
                .putPackets(peer, in(r * shard, shard),
                            scr(r * shard, shard))
                .readPackets(peer)
                .copy(in(peer * shard, shard), scr(peer * shard, shard));
        }
    }
    p.optimize();
    return p;
}

Program
buildRingAllReduce(int n, std::size_t bytes)
{
    requireShard(bytes, n);
    const std::size_t seg = bytes / n;
    Program p("ring-allreduce", n);
    for (int r = 0; r < n; ++r) {
        auto rb = p.onRank(r).threadBlock(0);
        const int next = (r + 1) % n;
        const int prev = (r + n - 1) % n;
        // ReduceScatter phase: two rotating scratch slots.
        for (int j = 0; j < n - 1; ++j) {
            std::size_t sendSeg = (r - j + n) % n;
            std::size_t recvSeg = (r - j - 1 + n) % n;
            std::size_t slot = static_cast<std::size_t>(j % 2) * seg;
            rb.put(next, in(sendSeg * seg, seg), scr(slot, seg))
                .signal(next, BufKind::Scratch)
                .wait(prev, BufKind::Scratch)
                .reduce(in(recvSeg * seg, seg), scr(slot, seg));
        }
        // AllGather phase: direct puts into the peer's data buffer.
        for (int j = 0; j < n - 1; ++j) {
            std::size_t sendSeg = (r + 1 - j + 2 * n) % n;
            rb.put(next, in(sendSeg * seg, seg), in(sendSeg * seg, seg))
                .signal(next, BufKind::Input)
                .wait(prev, BufKind::Input);
        }
        rb.barrier();
    }
    p.optimize();
    return p;
}

Program
buildHierAllReduce(int n, int g, std::size_t bytes)
{
    if (n % g != 0 || n / g < 2) {
        throw Error(ErrorCode::InvalidUsage,
                    "hierarchical program needs >= 2 nodes");
    }
    requireShard(bytes, g);
    const int m = n / g;
    const std::size_t chunk = bytes / g;
    const std::size_t regionB = bytes; // cross-node partials
    Program p("hier-allreduce", n);
    for (int r = 0; r < n; ++r) {
        const int node = r / g;
        const int local = r % g;
        auto rb = p.onRank(r).threadBlock(0);
        // Phase A: local ReduceScatter over G chunks (LL packets).
        for (int dl = 1; dl < g; ++dl) {
            int pl = (local + dl) % g;
            rb.putPackets(node * g + pl, in(pl * chunk, chunk),
                          scr(local * chunk, chunk));
        }
        for (int dl = 1; dl < g; ++dl) {
            rb.readPackets(node * g + (local + dl) % g);
        }
        for (int sl = 0; sl < g; ++sl) {
            if (sl != local) {
                rb.reduce(in(local * chunk, chunk),
                          scr(sl * chunk, chunk));
            }
        }
        rb.barrier();
        // Phase B: redundant cross-node all-pairs reduce of chunk
        // `local` (RDMA through port channels).
        for (int dn = 1; dn < m; ++dn) {
            int q = ((node + dn) % m) * g + local;
            rb.portPut(q, in(local * chunk, chunk),
                       scr(regionB + node * chunk, chunk));
        }
        for (int dn = 1; dn < m; ++dn) {
            rb.portWait(((node + dn) % m) * g + local, BufKind::Scratch);
        }
        for (int sn = 0; sn < m; ++sn) {
            if (sn != node) {
                rb.reduce(in(local * chunk, chunk),
                          scr(regionB + sn * chunk, chunk));
            }
        }
        rb.barrier();
        // Phase C: local AllGather of the G finished chunks.
        for (int dl = 1; dl < g; ++dl) {
            int q = node * g + (local + dl) % g;
            rb.put(q, in(local * chunk, chunk), in(local * chunk, chunk))
                .signal(q, BufKind::Input);
        }
        for (int dl = 1; dl < g; ++dl) {
            rb.wait(node * g + (local + dl) % g, BufKind::Input);
        }
        rb.barrier();
    }
    p.optimize();
    return p;
}

} // namespace mscclpp::dsl
