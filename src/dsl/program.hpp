#ifndef MSCCLPP_DSL_PROGRAM_HPP
#define MSCCLPP_DSL_PROGRAM_HPP

#include "dsl/ir.hpp"

#include <string>
#include <vector>

namespace mscclpp::dsl {

class Program;

/**
 * Fluent builder for one rank's instruction stream. Obtained from
 * Program::onRank(); every call appends one instruction bound to the
 * current thread block (threadBlock() switches it).
 */
class RankBuilder
{
  public:
    RankBuilder(Program& program, int rank)
        : program_(&program), rank_(rank)
    {
    }

    /** Select the thread block subsequent ops run on. */
    RankBuilder& threadBlock(int tb)
    {
        tb_ = tb;
        return *this;
    }

    /** HB put of @p src into @p peer's buffer at @p dst. */
    RankBuilder& put(int peer, BufRef src, BufRef dst);

    /**
     * Signal @p peer, ordered after prior puts to it. @p space names
     * the buffer space the preceding puts wrote (selects the channel
     * whose semaphore is incremented).
     */
    RankBuilder& signal(int peer, BufKind space = BufKind::Input);

    /**
     * Wait for one signal from @p peer. @p space must match the
     * sender's signal.
     */
    RankBuilder& wait(int peer, BufKind space = BufKind::Input);

    /** LL packet put (self-synchronising, scratch destinations). */
    RankBuilder& putPackets(int peer, BufRef src, BufRef dst);

    /** Wait until @p peer's next packet put is fully visible. */
    RankBuilder& readPackets(int peer);

    /** PortChannel (DMA/RDMA) put; @p withSignal fuses a signal. */
    RankBuilder& portPut(int peer, BufRef src, BufRef dst,
                         bool withSignal = true);

    /** Wait for one PortChannel signal from @p peer; @p space names
     *  where the peer's port puts landed. */
    RankBuilder& portWait(int peer, BufKind space = BufKind::Input);

    /** Wait until all prior port puts to @p peer completed. */
    RankBuilder& portFlush(int peer);

    /** dst op= src (local element-wise reduction). */
    RankBuilder& reduce(BufRef dst, BufRef src);

    /** dst = src (local copy, e.g. LL unpack). */
    RankBuilder& copy(BufRef dst, BufRef src);

    /** Cross-GPU barrier over all ranks of the program. */
    RankBuilder& barrier();

    /** Barrier across this rank's thread blocks only. */
    RankBuilder& gridBarrier();

    /** multimem reduce of @p bytes at @p offset into the same range. */
    RankBuilder& switchReduce(BufRef range);

    /** multimem broadcast of @p range to all replicas. */
    RankBuilder& switchBroadcast(BufRef range);

  private:
    RankBuilder& emit(Instr in);

    Program* program_;
    int rank_;
    int tb_ = 0;
};

/**
 * A collective communication algorithm described at chunk level: one
 * instruction stream per rank (the output of the MSCCL++ DSL
 * front end, Section 4.3). Lowering passes optimise the streams
 * before the executor runs them.
 */
class Program
{
  public:
    Program(std::string name, int numRanks);

    const std::string& name() const { return name_; }
    int numRanks() const { return numRanks_; }

    RankBuilder onRank(int rank);

    const std::vector<Instr>& instructions(int rank) const
    {
        return instrs_.at(rank);
    }

    /** Total instructions across ranks (before/after lowering). */
    std::size_t totalInstructions() const;

    /** Highest thread-block index used, plus one. */
    int numThreadBlocks() const;

    /** Whether any instruction needs multimem hardware. */
    bool usesSwitch() const;

    /** Whether any instruction needs port channels. */
    bool usesPort() const;

    // ---- lowering passes -------------------------------------------------

    /**
     * Fuse Put immediately followed by Signal to the same peer on the
     * same thread block into PutWithSignal (the putWithSignal fused
     * primitive).
     */
    std::size_t fusePutSignal();

    /**
     * Drop all but the last Signal in a run of puts+signals to the
     * same peer (batching synchronisation, Section 3.2.3). Opt-in:
     * the receiving rank must wait once per batch, not once per put.
     */
    std::size_t batchSignals();

    /** Collapse consecutive Barriers into one. */
    std::size_t dedupBarriers();

    /** Run the semantics-preserving passes (fusePutSignal,
     *  dedupBarriers); @return instructions removed. */
    std::size_t optimize();

    // ---- checking and persistence ------------------------------------------

    /**
     * Static checks the DSL performs for the programmer (Section 5.1:
     * "the DSL helps ... check for mistakes"): signal/wait counts
     * must match per (pair, buffer space), barrier counts must agree
     * across ranks, grid-barrier counts across thread blocks, peers
     * and buffer ranges must be in bounds.
     * @return human-readable problems; empty means the program is
     * well formed.
     */
    std::vector<std::string> validate(std::size_t dataBytes,
                                      std::size_t scratchBytes) const;

    /** Canonical text form (one instruction per line). */
    std::string serialize() const;

    /** Parse a program produced by serialize(); throws on errors. */
    static Program deserialize(const std::string& text);

  private:
    friend class RankBuilder;

    std::string name_;
    int numRanks_;
    std::vector<std::vector<Instr>> instrs_;
};

} // namespace mscclpp::dsl

#endif // MSCCLPP_DSL_PROGRAM_HPP
