#include "dsl/executor.hpp"

#include "core/bootstrap.hpp"
#include "core/errors.hpp"
#include "gpu/compute.hpp"

#include <algorithm>

namespace mscclpp::dsl {

Executor::Executor(gpu::Machine& machine, std::size_t maxBytes)
    : machine_(&machine), maxBytes_(maxBytes)
{
    n_ = machine.numGpus();
    if (n_ < 2) {
        throw Error(ErrorCode::InvalidUsage,
                    "executor needs at least two GPUs");
    }
    auto boots = createInProcessBootstrap(n_);
    for (int r = 0; r < n_; ++r) {
        comms_.push_back(std::make_unique<Communicator>(boots[r], machine));
        data_.push_back(machine.gpu(r).alloc(maxBytes));
        scratch_.push_back(machine.gpu(r).alloc(4 * maxBytes + 65536));
    }
    std::vector<Communicator*> comms;
    for (auto& c : comms_) {
        comms.push_back(c.get());
    }
    const int gpn = machine.config().gpusPerNode;
    const bool intraOnly = machine.numNodes() == 1;
    MeshOptions hb{Transport::Memory, Protocol::HB};
    MeshOptions ll{Transport::Memory, Protocol::LL};
    MeshOptions port{Transport::Port, Protocol::HB};
    if (intraOnly) {
        memHB_.emplace(ChannelMesh::build(comms, data_, data_, hb));
        memHBScratch_.emplace(ChannelMesh::build(comms, data_, scratch_,
                                                 hb));
        memLL_.emplace(ChannelMesh::build(comms, data_, scratch_, ll));
    } else {
        memHB_.emplace(
            ChannelMesh::buildIntraNode(comms, data_, data_, hb, gpn));
        memHBScratch_.emplace(ChannelMesh::buildIntraNode(
            comms, data_, scratch_, hb, gpn));
        memLL_.emplace(
            ChannelMesh::buildIntraNode(comms, data_, scratch_, ll, gpn));
    }
    port_.emplace(ChannelMesh::build(comms, data_, data_, port));
    portScratch_.emplace(ChannelMesh::build(comms, data_, scratch_, port));
    if (machine.config().hasMultimem && intraOnly) {
        std::vector<int> ranks(n_);
        std::vector<RegisteredMemory> mems;
        for (int r = 0; r < n_; ++r) {
            ranks[r] = r;
            mems.push_back(comms_[r]->registerMemory(data_[r]));
        }
        for (int r = 0; r < n_; ++r) {
            switch_.push_back(std::make_unique<SwitchChannel>(
                machine, ranks, mems, r));
        }
    }
    std::vector<int> allRanks(n_);
    for (int r = 0; r < n_; ++r) {
        allRanks[r] = r;
    }
    syncer_ = std::make_unique<DeviceSyncer>(machine, allRanks);
    planCache_ = std::make_unique<tuner::PlanCache>(
        64, &machine.obs().metrics(), "dsl.plan_cache");
}

Executor::~Executor()
{
    if (port_) {
        port_->shutdown();
    }
    if (portScratch_) {
        portScratch_->shutdown();
    }
    machine_->run();
}

std::size_t
Executor::scratchBytes() const
{
    return scratch_.empty() ? 0 : scratch_[0].size();
}

gpu::DeviceBuffer
Executor::resolve(int rank, const BufRef& ref) const
{
    if (ref.kind == BufKind::Input) {
        return data_.at(rank).view(ref.offset, ref.bytes);
    }
    return scratch_.at(rank).view(scratchShift() + ref.offset, ref.bytes);
}

namespace {

/** FNV-1a over the canonical text form: the plan-cache identity of a
 *  program's full content (name, streams, thread blocks). */
std::uint64_t
fingerprintProgram(const Program& program)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string& s) {
        for (char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
    };
    mix(program.name());
    mix(program.serialize());
    return h;
}

} // namespace

std::shared_ptr<const ExecutionPlan>
Executor::prepare(const Program& program)
{
    if (program.numRanks() != n_) {
        throw Error(ErrorCode::InvalidUsage,
                    "program rank count does not match the machine");
    }
    if (program.usesSwitch() && switch_.empty()) {
        throw Error(ErrorCode::InvalidUsage,
                    "program needs multimem hardware");
    }
    tuner::PlanKey key;
    key.variant = fingerprintProgram(program);
    if (const tuner::Plan* hit = planCache_->find(key)) {
        return std::static_pointer_cast<const ExecutionPlan>(
            hit->program);
    }
    // The DSL checks programs for mistakes before running them
    // (Section 5.1): mismatched signal/wait counts, barrier skew or
    // out-of-bounds chunks abort with a diagnostic instead of
    // deadlocking the kernel. Done once per program content; repeat
    // launches of the same shape hit the plan cache above.
    auto problems = program.validate(maxBytes_, 2 * maxBytes_ + 32768);
    if (!problems.empty()) {
        std::string msg = "program '" + program.name() + "' is ill-formed:";
        for (const std::string& p : problems) {
            msg += "\n  " + p;
        }
        throw Error(ErrorCode::InvalidUsage, msg);
    }
    auto plan = std::make_shared<ExecutionPlan>(
        ExecutionPlan{program, key.variant});
    tuner::Plan entry;
    entry.algoName = program.name();
    entry.blocks = program.numThreadBlocks();
    entry.program = plan;
    planCache_->insert(key, std::move(entry));
    return plan;
}

sim::Time
Executor::execute(const Program& program, gpu::DataType type,
                  gpu::ReduceOp op)
{
    return run(*prepare(program), type, op);
}

sim::Time
Executor::run(const ExecutionPlan& plan, gpu::DataType type,
              gpu::ReduceOp op)
{
    const Program& program = plan.program;
    const sim::Time decode = machine_->config().dslInstrOverhead;
    // Rotate the scratch region like the hand-written kernels do, so
    // back-to-back executions need no trailing barrier.
    activeShift_ = (round_++ & 1) * (2 * maxBytes_ + 32768);
    const std::size_t shift = activeShift_;

    auto runInstr = [this, type, op, decode, shift](
                        gpu::BlockCtx& ctx, int rank,
                        const Instr& in) -> sim::Task<> {
        sim::Time t0 = ctx.scheduler().now();
        co_await sim::Delay(ctx.scheduler(), decode, "dsl.executor");
        switch (in.op) {
          case OpCode::Put:
          case OpCode::PutWithSignal: {
            ChannelMesh& mesh = in.dst.kind == BufKind::Input
                                    ? *memHB_
                                    : *memHBScratch_;
            MemoryChannel& ch = mesh.mem(rank, in.peer);
            std::size_t dstOff =
                in.dst.kind == BufKind::Scratch ? in.dst.offset + shift
                                                : in.dst.offset;
            if (in.op == OpCode::Put) {
                co_await ch.put(ctx, dstOff, in.src.offset,
                                in.src.bytes);
            } else {
                co_await ch.putWithSignal(ctx, dstOff, in.src.offset,
                                          in.src.bytes);
            }
            break;
          }
          case OpCode::Signal: {
            ChannelMesh& mesh = in.dst.kind == BufKind::Input
                                    ? *memHB_
                                    : *memHBScratch_;
            co_await mesh.mem(rank, in.peer).signal(ctx);
            break;
          }
          case OpCode::Wait: {
            ChannelMesh& mesh = in.dst.kind == BufKind::Input
                                    ? *memHB_
                                    : *memHBScratch_;
            co_await mesh.mem(rank, in.peer).wait(ctx);
            break;
          }
          case OpCode::PutPackets:
            co_await memLL_->mem(rank, in.peer)
                .putPackets(ctx, in.dst.offset + shift, in.src.offset,
                            in.src.bytes);
            break;
          case OpCode::ReadPackets:
            co_await memLL_->mem(rank, in.peer).readPackets(ctx);
            break;
          case OpCode::PortPut: {
            PortChannel& ch = in.dst.kind == BufKind::Input
                                  ? port_->port(rank, in.peer)
                                  : portScratch_->port(rank, in.peer);
            std::size_t dstOff =
                in.dst.kind == BufKind::Scratch ? in.dst.offset + shift
                                                : in.dst.offset;
            if (in.fusedSignal) {
                co_await ch.putWithSignal(ctx, dstOff, in.src.offset,
                                          in.src.bytes);
            } else {
                co_await ch.put(ctx, dstOff, in.src.offset,
                                in.src.bytes);
            }
            break;
          }
          case OpCode::PortWait: {
            ChannelMesh& mesh = in.dst.kind == BufKind::Input
                                    ? *port_
                                    : *portScratch_;
            co_await mesh.port(rank, in.peer).wait(ctx);
            break;
          }
          case OpCode::PortFlush:
            co_await port_->port(rank, in.peer).flush(ctx);
            break;
          case OpCode::ReduceLocal: {
            gpu::DeviceBuffer dst = resolve(rank, in.dst);
            gpu::accumulate(dst, resolve(rank, in.src), in.dst.bytes,
                            type, op);
            co_await ctx.busy(
                machine_->gpu(rank).reduceTime(in.dst.bytes, 1));
            break;
          }
          case OpCode::CopyLocal: {
            gpu::DeviceBuffer dst = resolve(rank, in.dst);
            gpu::copyBytes(dst, resolve(rank, in.src), in.dst.bytes);
            co_await ctx.busy(
                machine_->gpu(rank).copyTime(in.dst.bytes));
            break;
          }
          case OpCode::Barrier:
            co_await syncer_->barrier(ctx, rank);
            break;
          case OpCode::GridBarrier:
            co_await ctx.gridBarrier();
            break;
          case OpCode::SwitchReduce: {
            gpu::DeviceBuffer dst = resolve(rank, in.dst);
            co_await switch_[rank]->reduce(ctx, dst, in.src.offset,
                                           in.src.bytes, type, op);
            break;
          }
          case OpCode::SwitchBroadcast: {
            gpu::DeviceBuffer src = resolve(rank, in.src);
            co_await switch_[rank]->broadcast(ctx, in.dst.offset, src,
                                              in.src.bytes);
            break;
          }
        }
        obs::ObsContext& obs = machine_->obs();
        sim::Time t1 = ctx.scheduler().now();
        if (obs.metrics().enabled()) {
            obs.metrics().counter("executor.steps").add(1);
            obs.metrics()
                .summary("executor.step_ns")
                .add(sim::toNs(t1 - t0));
        }
        if (obs.tracer().enabled()) {
            obs.tracer().span(obs::Category::Executor, toString(in.op),
                              rank, "tb" + std::to_string(ctx.blockIdx()),
                              t0, t1,
                              std::max(in.src.bytes, in.dst.bytes));
        }
    };

    auto fn = [&program, runInstr](gpu::BlockCtx& ctx,
                                   int rank) -> sim::Task<> {
        for (const Instr& in : program.instructions(rank)) {
            if (in.tb != ctx.blockIdx()) {
                continue;
            }
            co_await runInstr(ctx, rank, in);
        }
    };
    gpu::LaunchConfig cfg;
    cfg.blocks = program.numThreadBlocks();
    cfg.threadsPerBlock = 1024;
    obs::ObsContext& obs = machine_->obs();
    obs::StepWindow& win = obs.window();
    sim::Time t0 = machine_->scheduler().now();
    const std::string label = "dsl:" + program.name();
    // A DSL program is one serving step unless an outer window (the
    // caller's own beginStep) already scopes it.
    const bool opened = win.beginStepIfIdle(label, t0);
    obs.watchdog().pushOp(label);
    sim::Time elapsed = gpu::runOnAllRanks(*machine_, cfg, fn);
    obs.watchdog().popOp();
    if (obs.tracer().enabled()) {
        // Root span on the host collectives track: the whole-program
        // window the step profiler (and critical-path analyzer)
        // attributes across every kernel and proxy hop inside it —
        // program-level analysis, not per-op (ROADMAP item).
        obs.tracer().span(obs::Category::Collective, label,
                          obs::kHostPid, "collectives", t0,
                          machine_->scheduler().now());
    }
    if (opened) {
        win.endStep(machine_->scheduler().now(), elapsed);
    }
    return elapsed;
}

} // namespace mscclpp::dsl
