#ifndef MSCCLPP_DSL_EXECUTOR_HPP
#define MSCCLPP_DSL_EXECUTOR_HPP

#include "channel/channel_mesh.hpp"
#include "channel/device_syncer.hpp"
#include "channel/switch_channel.hpp"
#include "core/communicator.hpp"
#include "dsl/program.hpp"
#include "gpu/kernel.hpp"
#include "gpu/types.hpp"
#include "tuner/plan_cache.hpp"

#include <memory>
#include <optional>
#include <vector>

namespace mscclpp::dsl {

/**
 * A program the executor has already checked and is ready to launch:
 * the lowered instruction streams plus their content fingerprint.
 * Produced by Executor::prepare(), memoized in the executor's
 * execution-plan cache so the serving hot loop (same program shape
 * every decode step) skips re-validation entirely.
 */
struct ExecutionPlan
{
    Program program;
    std::uint64_t fingerprint = 0;
};

/**
 * The MSCCL++ DSL Executor (Section 4.3): a GPU kernel that reads a
 * program's instruction stream and runs it back-to-back over the
 * Primitive API. Each instruction pays a small decode cost — the
 * source of the ~3% average gap to hand-written Primitive kernels.
 */
class Executor
{
  public:
    /**
     * @param maxBytes capacity of each rank's data buffer; scratch is
     *        sized at 4x for two rotating double-buffered regions.
     */
    Executor(gpu::Machine& machine, std::size_t maxBytes);
    ~Executor();

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    gpu::Machine& machine() const { return *machine_; }
    int size() const { return n_; }
    std::size_t maxBytes() const { return maxBytes_; }
    std::size_t scratchBytes() const;

    gpu::DeviceBuffer dataBuffer(int rank) const { return data_.at(rank); }

    /**
     * Interpret @p program on all ranks. @return elapsed time,
     * including launch and host sync, exactly like the collective
     * API's timings. Equivalent to run(*prepare(program), ...): the
     * validation work is memoized per program content.
     */
    sim::Time execute(const Program& program, gpu::DataType type,
                      gpu::ReduceOp op);

    /**
     * Validate @p program and cache the resulting plan keyed by its
     * content fingerprint; repeated calls with an identical program
     * return the cached plan without re-validating. Throws
     * Error(InvalidUsage) when the program is ill-formed.
     */
    std::shared_ptr<const ExecutionPlan> prepare(const Program& program);

    /** Launch an already-prepared plan (no validation on this path). */
    sim::Time run(const ExecutionPlan& plan, gpu::DataType type,
                  gpu::ReduceOp op);

    /** The executor's execution-plan cache (obs: dsl.plan_cache.*). */
    const tuner::PlanCache& planCache() const { return *planCache_; }

  private:
    gpu::DeviceBuffer resolve(int rank, const BufRef& ref) const;

    /** Scratch byte offset of the active rotation generation. */
    std::size_t scratchShift() const { return activeShift_; }

    gpu::Machine* machine_;
    int n_;
    std::size_t maxBytes_;
    std::vector<std::unique_ptr<Communicator>> comms_;
    std::vector<gpu::DeviceBuffer> data_;
    std::vector<gpu::DeviceBuffer> scratch_;
    std::optional<ChannelMesh> memHB_;      // data -> data
    std::optional<ChannelMesh> memHBScratch_; // data -> scratch
    std::optional<ChannelMesh> memLL_;      // data -> scratch
    std::optional<ChannelMesh> port_;       // data -> data
    std::optional<ChannelMesh> portScratch_; // data -> scratch
    std::vector<std::unique_ptr<SwitchChannel>> switch_;
    std::unique_ptr<DeviceSyncer> syncer_;
    std::unique_ptr<tuner::PlanCache> planCache_;
    std::uint64_t round_ = 0;      ///< rotating-scratch generation
    std::size_t activeShift_ = 0;  ///< scratch offset of this round
};

} // namespace mscclpp::dsl

#endif // MSCCLPP_DSL_EXECUTOR_HPP
