#ifndef MSCCLPP_SIM_TIME_HPP
#define MSCCLPP_SIM_TIME_HPP

#include <cstdint>
#include <string>

namespace mscclpp::sim {

/**
 * Simulated time in picoseconds.
 *
 * Picosecond resolution keeps bandwidth arithmetic exact enough for
 * multi-GB/s links while a 64-bit counter still covers ~200 days of
 * simulated time, far beyond any collective benchmark.
 */
using Time = std::uint64_t;

/** Largest representable time, used as an "infinite" deadline. */
inline constexpr Time kTimeMax = ~Time{0};

/** @return @p x picoseconds. */
constexpr Time ps(double x) { return static_cast<Time>(x); }

/** @return @p x nanoseconds in picoseconds. */
constexpr Time ns(double x) { return static_cast<Time>(x * 1e3); }

/** @return @p x microseconds in picoseconds. */
constexpr Time us(double x) { return static_cast<Time>(x * 1e6); }

/** @return @p x milliseconds in picoseconds. */
constexpr Time msec(double x) { return static_cast<Time>(x * 1e9); }

/** @return @p t expressed in fractional microseconds. */
constexpr double toUs(Time t) { return static_cast<double>(t) / 1e6; }

/** @return @p t expressed in fractional nanoseconds. */
constexpr double toNs(Time t) { return static_cast<double>(t) / 1e3; }

/** @return @p t expressed in fractional milliseconds. */
constexpr double toMs(Time t) { return static_cast<double>(t) / 1e9; }

/** @return @p t expressed in fractional seconds. */
constexpr double toSec(Time t) { return static_cast<double>(t) / 1e12; }

/**
 * Serialisation time of @p bytes over a @p gbps GB/s resource.
 *
 * GB is 1e9 bytes, matching the convention of NCCL bus-bandwidth
 * reporting. Zero bandwidth means an infinitely fast resource (used by
 * unit tests to isolate latency terms).
 */
constexpr Time transferTime(std::uint64_t bytes, double gbps)
{
    if (gbps <= 0.0) {
        return 0;
    }
    return static_cast<Time>(static_cast<double>(bytes) * 1e3 / gbps);
}

/**
 * Achieved bandwidth in GB/s for moving @p bytes in @p elapsed time.
 * @return 0 when @p elapsed is zero.
 */
constexpr double achievedGBps(std::uint64_t bytes, Time elapsed)
{
    if (elapsed == 0) {
        return 0.0;
    }
    return static_cast<double>(bytes) * 1e3 / static_cast<double>(elapsed);
}

/** Human-readable rendering, e.g. "12.3us" or "4.56ms". */
std::string formatTime(Time t);

} // namespace mscclpp::sim

#endif // MSCCLPP_SIM_TIME_HPP
