#include "sim/scheduler.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace mscclpp::sim {

void
Scheduler::schedule(Time delay, std::function<void()> fn)
{
    scheduleAt(now_ + delay, std::move(fn));
}

void
Scheduler::scheduleAt(Time when, std::function<void()> fn)
{
    if (when < now_) {
        when = now_;
    }
    queue_.push(Event{when, nextSeq_++, std::move(fn)});
}

bool
Scheduler::step()
{
    if (queue_.empty()) {
        return false;
    }
    // priority_queue::top() is const; the closure must be moved out
    // before pop() to avoid a copy of a potentially heavy capture.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ++eventsProcessed_;
    ev.fn();
    return true;
}

void
Scheduler::run()
{
    for (;;) {
        while (step()) {
            if (firstError_) {
                break;
            }
        }
        if (firstError_) {
            break;
        }
        if (idleHook_) {
            idleHook_();
            if (!queue_.empty()) {
                continue;
            }
        }
        break;
    }
    if (firstError_) {
        std::exception_ptr e = std::exchange(firstError_, nullptr);
        std::rethrow_exception(e);
    }
}

bool
Scheduler::runUntil(Time deadline)
{
    while (!queue_.empty() && queue_.top().when <= deadline) {
        step();
        if (firstError_) {
            std::exception_ptr e = std::exchange(firstError_, nullptr);
            std::rethrow_exception(e);
        }
    }
    return queue_.empty();
}

void
Scheduler::advanceTo(Time when)
{
    if (queue_.empty() && when > now_) {
        now_ = when;
    }
}

void
Scheduler::reportError(std::exception_ptr e)
{
    if (!firstError_) {
        firstError_ = std::move(e);
    }
}

void
Scheduler::resumeNow(std::coroutine_handle<> h)
{
    schedule(0, [h] { h.resume(); });
}

void
Scheduler::resumeAfter(Time delay, std::coroutine_handle<> h)
{
    schedule(delay, [h] { h.resume(); });
}

} // namespace mscclpp::sim

namespace mscclpp::sim {

std::string
formatTime(Time t)
{
    char buf[64];
    if (t < ns(1)) {
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "ps", t);
    } else if (t < us(1)) {
        std::snprintf(buf, sizeof(buf), "%.2fns", toNs(t));
    } else if (t < msec(1)) {
        std::snprintf(buf, sizeof(buf), "%.2fus", toUs(t));
    } else {
        std::snprintf(buf, sizeof(buf), "%.3fms", toMs(t));
    }
    return buf;
}

} // namespace mscclpp::sim
