#include "sim/scheduler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace mscclpp::sim {

std::uint64_t Scheduler::Event::copies_ = 0;

FrameStats&
frameStats()
{
    static FrameStats stats;
    return stats;
}

std::uint64_t
Scheduler::closureCopies()
{
    return Event::copies_;
}

void
Scheduler::push(Event ev)
{
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
    if (heap_.size() > maxQueueDepth_) {
        maxQueueDepth_ = heap_.size();
    }
}

void
Scheduler::schedule(Time delay, std::function<void()> fn,
                    const char* origin)
{
    scheduleAt(now_ + delay, std::move(fn), origin);
}

void
Scheduler::scheduleAt(Time when, std::function<void()> fn,
                      const char* origin)
{
    if (when < now_) {
        when = now_;
    }
    if (origin == nullptr) {
        origin = currentOrigin_;
    }
    push(Event{when, nextSeq_++, origin, std::move(fn)});
}

void
Scheduler::countOrigin(const char* origin)
{
    for (std::size_t i = 0; i < originCounts_.size(); ++i) {
        if (originCounts_[i].first == origin) {
            ++originCounts_[i].second;
            if (i != 0) {
                std::swap(originCounts_[i], originCounts_[i - 1]);
            }
            return;
        }
    }
    originCounts_.emplace_back(origin, 1);
}

std::map<std::string, std::uint64_t>
Scheduler::originCountsByName() const
{
    std::map<std::string, std::uint64_t> merged;
    for (const auto& [origin, count] : originCounts_) {
        merged[origin != nullptr ? origin : kUnattributed] += count;
    }
    return merged;
}

bool
Scheduler::step()
{
    if (heap_.empty()) {
        return false;
    }
    // Move-only extraction: pop_heap rotates the minimum to the back,
    // the closure moves out (Event::copies_ proves no copy happened).
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.when;
    ++eventsProcessed_;
    if (countOrigins_) {
        countOrigin(ev.origin);
    }
    if (prof_ != nullptr) {
        prof_->eventPopped();
    }
    const char* saved = std::exchange(currentOrigin_, ev.origin);
    ev.fn();
    currentOrigin_ = saved;
    if (prof_ != nullptr) {
        prof_->eventDone(ev.origin);
    }
    return true;
}

void
Scheduler::run()
{
    if (prof_ != nullptr) {
        prof_->runBegin();
    }
    for (;;) {
        while (step()) {
            if (firstError_) {
                break;
            }
        }
        if (firstError_) {
            break;
        }
        if (idleHook_) {
            if (prof_ != nullptr) {
                prof_->idleHookBegin();
            }
            idleHook_();
            if (prof_ != nullptr) {
                prof_->idleHookEnd();
            }
            if (!heap_.empty()) {
                continue;
            }
        }
        break;
    }
    if (prof_ != nullptr) {
        prof_->runEnd();
    }
    if (firstError_) {
        std::exception_ptr e = std::exchange(firstError_, nullptr);
        std::rethrow_exception(e);
    }
}

bool
Scheduler::runUntil(Time deadline)
{
    if (prof_ != nullptr) {
        prof_->runBegin();
    }
    while (!heap_.empty() && heap_.front().when <= deadline) {
        step();
        if (firstError_) {
            if (prof_ != nullptr) {
                prof_->runEnd();
            }
            std::exception_ptr e = std::exchange(firstError_, nullptr);
            std::rethrow_exception(e);
        }
    }
    if (prof_ != nullptr) {
        prof_->runEnd();
    }
    return heap_.empty();
}

void
Scheduler::advanceTo(Time when)
{
    if (heap_.empty() && when > now_) {
        now_ = when;
    }
}

void
Scheduler::reportError(std::exception_ptr e)
{
    if (!firstError_) {
        firstError_ = std::move(e);
    }
}

void
Scheduler::resumeNow(std::coroutine_handle<> h, const char* origin)
{
    schedule(0, [h] { h.resume(); }, origin);
}

void
Scheduler::resumeAfter(Time delay, std::coroutine_handle<> h,
                       const char* origin)
{
    schedule(delay, [h] { h.resume(); }, origin);
}

} // namespace mscclpp::sim

namespace mscclpp::sim {

std::string
formatTime(Time t)
{
    char buf[64];
    if (t < ns(1)) {
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "ps", t);
    } else if (t < us(1)) {
        std::snprintf(buf, sizeof(buf), "%.2fns", toNs(t));
    } else if (t < msec(1)) {
        std::snprintf(buf, sizeof(buf), "%.2fus", toUs(t));
    } else {
        std::snprintf(buf, sizeof(buf), "%.3fms", toMs(t));
    }
    return buf;
}

} // namespace mscclpp::sim
