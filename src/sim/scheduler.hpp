#ifndef MSCCLPP_SIM_SCHEDULER_HPP
#define MSCCLPP_SIM_SCHEDULER_HPP

#include "sim/time.hpp"

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mscclpp::sim {

/**
 * Process-wide coroutine-frame census (created / live / peak). Every
 * Task promise and every Detached root counts itself in, so a
 * profiler can report how many frames a workload keeps suspended at
 * once — the number the pooled-frame-allocator work will be judged
 * against. Purely host-side bookkeeping; never consulted by the
 * simulation itself.
 */
struct FrameStats
{
    std::uint64_t created = 0;
    std::uint64_t live = 0;
    std::uint64_t peak = 0;
};

FrameStats& frameStats();

namespace detail {

inline void
frameCreated()
{
    FrameStats& f = frameStats();
    ++f.created;
    if (++f.live > f.peak) {
        f.peak = f.live;
    }
}

inline void
frameDestroyed()
{
    --frameStats().live;
}

} // namespace detail

/**
 * Host-time profiler hook for the Scheduler (implemented by
 * obs::SimProf). The scheduler never reads the host clock itself: it
 * only announces where it is in the dispatch loop, and an attached
 * profiler samples steady_clock inside each callback. With no
 * profiler attached the cost is one null-pointer test per event, and
 * nothing here can touch virtual time either way.
 */
class DispatchProfiler
{
  public:
    virtual ~DispatchProfiler() = default;

    /** run()/runUntil() entered; starts a measurement window. */
    virtual void runBegin() = 0;
    /** An event was popped off the heap (heap maintenance done,
     *  closure not yet invoked). */
    virtual void eventPopped() = 0;
    /** The popped event's closure returned; @p origin is the label
     *  stamped when the event was scheduled (nullptr = unlabelled). */
    virtual void eventDone(const char* origin) = 0;
    /** The idle hook is about to run on a drained queue. */
    virtual void idleHookBegin() = 0;
    /** The idle hook returned. */
    virtual void idleHookEnd() = 0;
    /** run()/runUntil() returning; closes the measurement window. */
    virtual void runEnd() = 0;
};

/**
 * Discrete-event scheduler driving all simulated activity.
 *
 * Events are closures ordered by (timestamp, insertion sequence); ties
 * execute in FIFO order so simulations are deterministic. Coroutine
 * tasks (see task.hpp) suspend on awaitables that re-arm themselves via
 * schedule().
 *
 * Every event carries an *origin label* — a string literal stamped at
 * the schedule()/resumeAfter() call site (e.g. "channel.port") or
 * inherited from the event being dispatched when the call site passes
 * none, so causal chains (a semaphore signal resuming a waiter) keep
 * the subsystem that started them. Labels cost one pointer per event;
 * the deterministic per-origin counters behind enableOriginCounts()
 * and the host-time attribution in obs::SimProf are both keyed on
 * them.
 *
 * The scheduler is single-threaded by design: all "parallelism" in the
 * simulated machine is expressed as interleaved events in virtual time.
 */
class Scheduler
{
  public:
    /** Exported name for events scheduled with no origin label. */
    static constexpr const char* kUnattributed = "unattributed";

    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /** Current virtual time. */
    Time now() const { return now_; }

    /** Schedule @p fn to run @p delay after the current time. */
    void schedule(Time delay, std::function<void()> fn,
                  const char* origin = nullptr);

    /** Schedule @p fn at absolute time @p when (clamped to now()). */
    void scheduleAt(Time when, std::function<void()> fn,
                    const char* origin = nullptr);

    /**
     * Run until the event queue drains.
     *
     * Rethrows the first exception reported by a detached task (see
     * Task::detach()) after the queue is drained or the failing event
     * unwound.
     */
    void run();

    /**
     * Run until the event queue drains or virtual time would pass
     * @p deadline.
     * @return true if the queue drained, false if stopped on time.
     */
    bool runUntil(Time deadline);

    /** Execute a single event. @return false if the queue is empty. */
    bool step();

    /**
     * Jump virtual time forward to @p when while the queue is idle —
     * an external clock (the serving cluster's request timeline)
     * re-anchoring the simulation between collectives, so traced
     * spans land at their true serving time. A @p when in the past
     * or a non-empty queue is a no-op (events already in flight own
     * the clock).
     */
    void advanceTo(Time when);

    /** Number of events executed so far (for tests / stats). */
    std::uint64_t eventsProcessed() const { return eventsProcessed_; }

    /** True if no event is pending. */
    bool idle() const { return heap_.empty(); }

    /** Events currently pending. */
    std::size_t queueDepth() const { return heap_.size(); }

    /** High-water mark of the pending-event count. */
    std::size_t maxQueueDepth() const { return maxQueueDepth_; }

    /**
     * Process-wide count of Event copy-constructions. The dispatch
     * path is move-only (pop_heap rotates the head to the back, the
     * closure moves out), so this stays flat over any number of
     * events — the counter exists to prove it, in tests and in the
     * simprof dump (a copied std::function clones its capture on the
     * hot path, which is exactly the allocation bug this guards
     * against).
     */
    static std::uint64_t closureCopies();

    /**
     * Origin label of the event currently being dispatched (nullptr
     * outside dispatch or for unlabelled events). Events scheduled
     * without an explicit origin inherit this.
     */
    const char* currentOrigin() const { return currentOrigin_; }

    /**
     * Count dispatched events per origin label (off by default: the
     * count costs a short pointer scan per event). Deterministic —
     * purely a function of the event stream, never of host timing —
     * so bench_compare gates the counts bit-identically.
     */
    void enableOriginCounts(bool on) { countOrigins_ = on; }
    bool originCountsEnabled() const { return countOrigins_; }

    /**
     * Dispatched events per origin label, merged by label text (the
     * same literal may have distinct addresses across translation
     * units), nullptr reported as kUnattributed. Sorted by name —
     * deterministic output for the bench gate.
     */
    std::map<std::string, std::uint64_t> originCountsByName() const;

    /**
     * Stamp an origin label on everything scheduled from host code in
     * the enclosing scope (detach roots, test drivers). Event
     * dispatch saves/restores the current origin itself, so scopes
     * are only needed *outside* the dispatch loop.
     */
    class OriginScope
    {
      public:
        OriginScope(Scheduler& sched, const char* origin)
            : sched_(&sched),
              saved_(std::exchange(sched.currentOrigin_, origin))
        {
        }
        ~OriginScope() { sched_->currentOrigin_ = saved_; }
        OriginScope(const OriginScope&) = delete;
        OriginScope& operator=(const OriginScope&) = delete;

      private:
        Scheduler* sched_;
        const char* saved_;
    };

    /**
     * Attach (or detach, with nullptr) the host-time profiler. The
     * profiler only ever reads the host clock — it cannot perturb
     * virtual time (see DispatchProfiler).
     */
    void setDispatchProfiler(DispatchProfiler* prof) { prof_ = prof; }
    DispatchProfiler* dispatchProfiler() const { return prof_; }

    /**
     * Hook invoked by run() whenever the event queue drains. The hook
     * may schedule new events (e.g. a watchdog inspecting coroutines
     * still suspended on semaphores); run() keeps going until the
     * queue drains with the hook scheduling nothing. Because it only
     * fires on a drained queue, a hook never perturbs the virtual-time
     * ordering of a live simulation.
     */
    void setIdleHook(std::function<void()> hook) { idleHook_ = std::move(hook); }

    /**
     * Record an exception raised inside a detached coroutine. The first
     * report wins; run() rethrows it.
     */
    void reportError(std::exception_ptr e);

    /** Resume @p h at the current virtual time (helper for awaitables). */
    void resumeNow(std::coroutine_handle<> h,
                   const char* origin = nullptr);

    /** Resume @p h after @p delay. */
    void resumeAfter(Time delay, std::coroutine_handle<> h,
                     const char* origin = nullptr);

  private:
    struct Event
    {
        Time when;
        std::uint64_t seq;
        const char* origin;
        std::function<void()> fn;

        Event(Time w, std::uint64_t s, const char* o,
              std::function<void()> f)
            : when(w), seq(s), origin(o), fn(std::move(f))
        {
        }
        Event(Event&&) noexcept = default;
        Event& operator=(Event&&) noexcept = default;
        // Copying clones the closure's capture — never on the
        // dispatch path. Counted so tests (and the simprof dump) can
        // prove the heap maintenance stayed move-only.
        Event(const Event& o)
            : when(o.when), seq(o.seq), origin(o.origin), fn(o.fn)
        {
            ++copies_;
        }
        Event& operator=(const Event& o)
        {
            when = o.when;
            seq = o.seq;
            origin = o.origin;
            fn = o.fn;
            ++copies_;
            return *this;
        }

        bool operator>(const Event& o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }

        static std::uint64_t copies_;
    };

    /** std::push_heap/pop_heap comparator: a min-heap on (when, seq)
     *  needs "later-than" as its strict ordering. */
    struct EventAfter
    {
        bool operator()(const Event& a, const Event& b) const
        {
            return a > b;
        }
    };

    void push(Event ev);
    void countOrigin(const char* origin);

    // Explicit heap instead of std::priority_queue: top() is const
    // there, which forces either a copy of the closure on every pop
    // or a const_cast. pop_heap moves the minimum to the back, where
    // it can be moved out legitimately.
    std::vector<Event> heap_;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsProcessed_ = 0;
    std::size_t maxQueueDepth_ = 0;
    std::exception_ptr firstError_;
    std::function<void()> idleHook_;
    const char* currentOrigin_ = nullptr;
    DispatchProfiler* prof_ = nullptr;
    bool countOrigins_ = false;
    // Pointer-keyed (labels are string literals); merged by text in
    // originCountsByName(). Linear scan with an MRU front slot: the
    // label population is a few dozen and runs of same-origin events
    // are common.
    std::vector<std::pair<const char*, std::uint64_t>> originCounts_;
};

} // namespace mscclpp::sim

#endif // MSCCLPP_SIM_SCHEDULER_HPP
