#ifndef MSCCLPP_SIM_SCHEDULER_HPP
#define MSCCLPP_SIM_SCHEDULER_HPP

#include "sim/time.hpp"

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <vector>

namespace mscclpp::sim {

/**
 * Discrete-event scheduler driving all simulated activity.
 *
 * Events are closures ordered by (timestamp, insertion sequence); ties
 * execute in FIFO order so simulations are deterministic. Coroutine
 * tasks (see task.hpp) suspend on awaitables that re-arm themselves via
 * schedule().
 *
 * The scheduler is single-threaded by design: all "parallelism" in the
 * simulated machine is expressed as interleaved events in virtual time.
 */
class Scheduler
{
  public:
    Scheduler() = default;
    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /** Current virtual time. */
    Time now() const { return now_; }

    /** Schedule @p fn to run @p delay after the current time. */
    void schedule(Time delay, std::function<void()> fn);

    /** Schedule @p fn at absolute time @p when (clamped to now()). */
    void scheduleAt(Time when, std::function<void()> fn);

    /**
     * Run until the event queue drains.
     *
     * Rethrows the first exception reported by a detached task (see
     * Task::detach()) after the queue is drained or the failing event
     * unwound.
     */
    void run();

    /**
     * Run until the event queue drains or virtual time would pass
     * @p deadline.
     * @return true if the queue drained, false if stopped on time.
     */
    bool runUntil(Time deadline);

    /** Execute a single event. @return false if the queue is empty. */
    bool step();

    /**
     * Jump virtual time forward to @p when while the queue is idle —
     * an external clock (the serving cluster's request timeline)
     * re-anchoring the simulation between collectives, so traced
     * spans land at their true serving time. A @p when in the past
     * or a non-empty queue is a no-op (events already in flight own
     * the clock).
     */
    void advanceTo(Time when);

    /** Number of events executed so far (for tests / stats). */
    std::uint64_t eventsProcessed() const { return eventsProcessed_; }

    /** True if no event is pending. */
    bool idle() const { return queue_.empty(); }

    /**
     * Hook invoked by run() whenever the event queue drains. The hook
     * may schedule new events (e.g. a watchdog inspecting coroutines
     * still suspended on semaphores); run() keeps going until the
     * queue drains with the hook scheduling nothing. Because it only
     * fires on a drained queue, a hook never perturbs the virtual-time
     * ordering of a live simulation.
     */
    void setIdleHook(std::function<void()> hook) { idleHook_ = std::move(hook); }

    /**
     * Record an exception raised inside a detached coroutine. The first
     * report wins; run() rethrows it.
     */
    void reportError(std::exception_ptr e);

    /** Resume @p h at the current virtual time (helper for awaitables). */
    void resumeNow(std::coroutine_handle<> h);

    /** Resume @p h after @p delay. */
    void resumeAfter(Time delay, std::coroutine_handle<> h);

  private:
    struct Event
    {
        Time when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool operator>(const Event& o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    Time now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsProcessed_ = 0;
    std::exception_ptr firstError_;
    std::function<void()> idleHook_;
};

} // namespace mscclpp::sim

#endif // MSCCLPP_SIM_SCHEDULER_HPP
