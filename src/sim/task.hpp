#ifndef MSCCLPP_SIM_TASK_HPP
#define MSCCLPP_SIM_TASK_HPP

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace mscclpp::sim {

template <typename T>
class Task;

namespace detail {

/**
 * State shared by all Task promises: the continuation to resume when
 * the coroutine finishes, and any escaped exception. Construction and
 * destruction register with the process-wide frame census (see
 * sim::frameStats) so a profiler can report live/peak coroutine
 * frames without hooking operator new.
 */
struct PromiseBase
{
    PromiseBase() { frameCreated(); }
    ~PromiseBase() { frameDestroyed(); }
    PromiseBase(const PromiseBase&) = delete;
    PromiseBase& operator=(const PromiseBase&) = delete;

    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> h) const noexcept
        {
            // Symmetric transfer to whoever awaited this coroutine.
            auto& p = h.promise();
            if (p.continuation) {
                return p.continuation;
            }
            return std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }
};

} // namespace detail

/**
 * A lazily-started coroutine task.
 *
 * Tasks model simulated activities (GPU thread blocks, CPU proxy
 * threads, NIC engines). They start when first awaited, complete by
 * resuming their awaiter via symmetric transfer, and propagate
 * exceptions to the awaiter. A root task is driven with
 * detach(scheduler), which hands error reporting to the scheduler.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        Task get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void return_value(T v) { value.emplace(std::move(v)); }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Task& operator=(Task&& o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    /** Awaiting a Task starts it and yields its return value. */
    auto operator co_await() && noexcept
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> handle;

            bool await_ready() const noexcept
            {
                return !handle || handle.done();
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                handle.promise().continuation = cont;
                return handle;
            }

            T await_resume()
            {
                auto& p = handle.promise();
                if (p.exception) {
                    std::rethrow_exception(p.exception);
                }
                return std::move(*p.value);
            }
        };
        return Awaiter{handle_};
    }

  private:
    void destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/** Task<void> specialisation. */
template <>
class [[nodiscard]] Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task get_return_object()
        {
            return Task{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void return_void() const noexcept {}
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Task& operator=(Task&& o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    auto operator co_await() && noexcept
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> handle;

            bool await_ready() const noexcept
            {
                return !handle || handle.done();
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                handle.promise().continuation = cont;
                return handle;
            }

            void await_resume()
            {
                auto& p = handle.promise();
                if (p.exception) {
                    std::rethrow_exception(p.exception);
                }
            }
        };
        return Awaiter{handle_};
    }

  private:
    void destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

/**
 * Eagerly-started, self-destroying coroutine used to run a Task as a
 * simulation root. Exceptions are reported to the Scheduler, which
 * rethrows them from run().
 */
struct Detached
{
    struct promise_type
    {
        promise_type() { detail::frameCreated(); }
        ~promise_type() { detail::frameDestroyed(); }

        Detached get_return_object() const noexcept { return {}; }
        std::suspend_never initial_suspend() const noexcept { return {}; }
        std::suspend_never final_suspend() const noexcept { return {}; }
        void return_void() const noexcept {}
        void unhandled_exception() const { std::terminate(); }
    };
};

/** Counter that tracks completion of a group of detached tasks. */
class JoinCounter
{
  public:
    void add(int n = 1) { pending_ += n; }
    void done() { --pending_; }
    bool complete() const { return pending_ == 0; }
    int pending() const { return pending_; }

  private:
    int pending_ = 0;
};

namespace detail {

inline Detached
detachImpl(Scheduler& sched, Task<> task, JoinCounter* join)
{
    try {
        co_await std::move(task);
    } catch (...) {
        sched.reportError(std::current_exception());
    }
    if (join != nullptr) {
        join->done();
    }
}

} // namespace detail

/**
 * Launch @p task as a simulation root. The task begins running
 * immediately (until its first suspension); completion is tracked by
 * the optional @p join counter.
 */
inline void
detach(Scheduler& sched, Task<> task, JoinCounter* join = nullptr)
{
    if (join != nullptr) {
        join->add();
    }
    detail::detachImpl(sched, std::move(task), join);
}

/**
 * Awaitable that suspends the current task for a fixed delay. The
 * optional @p origin labels the wake-up event for host-time
 * attribution (see Scheduler); omitted, the event inherits the origin
 * of whatever event is currently dispatching.
 */
class Delay
{
  public:
    Delay(Scheduler& sched, Time delay, const char* origin = nullptr)
        : sched_(&sched), delay_(delay), origin_(origin)
    {
    }

    bool await_ready() const noexcept { return delay_ == 0; }

    void await_suspend(std::coroutine_handle<> h) const
    {
        sched_->resumeAfter(delay_, h, origin_);
    }

    void await_resume() const noexcept {}

  private:
    Scheduler* sched_;
    Time delay_;
    const char* origin_;
};

} // namespace mscclpp::sim

#endif // MSCCLPP_SIM_TASK_HPP
