#ifndef MSCCLPP_SIM_SYNC_HPP
#define MSCCLPP_SIM_SYNC_HPP

#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

#include <coroutine>
#include <cstdint>
#include <vector>

namespace mscclpp::sim {

/**
 * Broadcast wakeup primitive.
 *
 * Tasks suspend on wait() and are all resumed (at the current virtual
 * time) by the next notifyAll(). There is no predicate — callers
 * re-check their condition after waking, exactly like a condition
 * variable with spurious wakeups.
 */
class SimSignal
{
  public:
    explicit SimSignal(Scheduler& sched) : sched_(&sched) {}

    SimSignal(const SimSignal&) = delete;
    SimSignal& operator=(const SimSignal&) = delete;

    class Awaiter
    {
      public:
        explicit Awaiter(SimSignal& sig) : sig_(&sig) {}

        bool await_ready() const noexcept { return false; }

        void await_suspend(std::coroutine_handle<> h)
        {
            sig_->waiters_.push_back(h);
        }

        void await_resume() const noexcept {}

      private:
        SimSignal* sig_;
    };

    /** Suspend until the next notifyAll(). */
    Awaiter wait() { return Awaiter{*this}; }

    /** Wake every currently-suspended waiter. */
    void notifyAll()
    {
        if (waiters_.empty()) {
            return;
        }
        std::vector<std::coroutine_handle<>> ready;
        ready.swap(waiters_);
        for (auto h : ready) {
            sched_->resumeNow(h);
        }
    }

    std::size_t numWaiters() const { return waiters_.size(); }

    Scheduler& scheduler() const { return *sched_; }

  private:
    Scheduler* sched_;
    std::vector<std::coroutine_handle<>> waiters_;
};

/**
 * Monotonic counting semaphore, the simulated analogue of the uint
 * semaphore a MSCCL++ channel allocates on the receiving GPU.
 *
 * signal() increments the value; waitUntil() blocks a task until the
 * value reaches an expected count. @p pollLatency models the detection
 * delay of the busy-wait loop a real GPU thread would spin in (memory
 * round-trip granularity), charged once per wakeup.
 */
class SimSemaphore
{
  public:
    explicit SimSemaphore(Scheduler& sched) : sig_(sched) {}

    /** Atomically add @p n to the semaphore and wake waiters. */
    void add(std::uint64_t n = 1)
    {
        value_ += n;
        sig_.notifyAll();
    }

    std::uint64_t value() const { return value_; }

    /** Suspend until value() >= @p expected. @p pollLatency models
     *  the busy-wait detection delay, charged only when the task
     *  actually had to spin (an already-set flag is read in the first
     *  iteration). */
    Task<> waitUntil(std::uint64_t expected, Time pollLatency = 0)
    {
        bool waited = false;
        while (value_ < expected) {
            waited = true;
            co_await sig_.wait();
        }
        if (waited && pollLatency > 0) {
            co_await Delay(sig_.scheduler(), pollLatency);
        }
    }

  private:
    SimSignal sig_;
    std::uint64_t value_ = 0;
};

/**
 * Reusable barrier across a fixed set of @p parties simulated tasks
 * (the multiDeviceBarrier of Figure 5, or a kernel-wide thread-block
 * barrier).
 */
class SimBarrier
{
  public:
    SimBarrier(Scheduler& sched, int parties)
        : sig_(sched), parties_(parties)
    {
    }

    /** Suspend until all parties have arrived at this generation. */
    Task<> arriveAndWait()
    {
        std::uint64_t gen = generation_;
        if (++arrived_ == parties_) {
            arrived_ = 0;
            ++generation_;
            sig_.notifyAll();
            co_return;
        }
        while (generation_ == gen) {
            co_await sig_.wait();
        }
    }

    int parties() const { return parties_; }

  private:
    SimSignal sig_;
    int parties_;
    int arrived_ = 0;
    std::uint64_t generation_ = 0;
};

/**
 * Completion tracker for a dynamic group of tasks (kernel thread
 * blocks, outstanding transfers). add() before spawning, done() on
 * completion, wait() suspends until the count returns to zero.
 */
class WaitGroup
{
  public:
    explicit WaitGroup(Scheduler& sched) : sig_(sched) {}

    void add(int n = 1) { pending_ += n; }

    void done()
    {
        if (--pending_ == 0) {
            sig_.notifyAll();
        }
    }

    int pending() const { return pending_; }

    /** Suspend until all added work has called done(). */
    Task<> wait()
    {
        while (pending_ > 0) {
            co_await sig_.wait();
        }
    }

  private:
    SimSignal sig_;
    int pending_ = 0;
};

} // namespace mscclpp::sim

#endif // MSCCLPP_SIM_SYNC_HPP
