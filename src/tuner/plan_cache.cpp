#include "tuner/plan_cache.hpp"

namespace mscclpp::tuner {

PlanCache::PlanCache(std::size_t capacity, obs::MetricsRegistry* metrics,
                     std::string metricPrefix)
    : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics),
      prefix_(std::move(metricPrefix))
{
}

void
PlanCache::count(const char* suffix)
{
    if (metrics_ != nullptr && metrics_->enabled()) {
        metrics_->counter(prefix_ + "." + suffix).add(1);
    }
}

const Plan*
PlanCache::find(const PlanKey& key)
{
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        count("miss");
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    count("hit");
    return &it->second->plan;
}

const Plan&
PlanCache::insert(const PlanKey& key, Plan plan)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second->plan = std::move(plan);
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->plan;
    }
    if (entries_.size() >= capacity_) {
        ++evictions_;
        count("evict");
        entries_.erase(lru_.back().key);
        lru_.pop_back();
    }
    lru_.push_front(Entry{key, std::move(plan)});
    entries_[key] = lru_.begin();
    return lru_.front().plan;
}

void
PlanCache::clear()
{
    lru_.clear();
    entries_.clear();
}

} // namespace mscclpp::tuner
