#include "tuner/tuner.hpp"

#include "core/logging.hpp"

namespace mscclpp::tuner {

const char*
toString(TunerMode m)
{
    switch (m) {
      case TunerMode::Static:
        return "static";
      case TunerMode::Profile:
        return "profile";
      case TunerMode::File:
        return "file";
    }
    return "?";
}

std::optional<TunerMode>
parseTunerMode(const std::string& s)
{
    if (s == "static") {
        return TunerMode::Static;
    }
    if (s == "profile") {
        return TunerMode::Profile;
    }
    if (s == "file") {
        return TunerMode::File;
    }
    return std::nullopt;
}

Tuner::Tuner(TunerMode mode, const fabric::EnvConfig& cfg, int nRanks,
             int nNodes, std::string cacheFile,
             obs::MetricsRegistry* metrics, Hooks hooks)
    : mode_(mode),
      envKey_(TunerCache::envKey(cfg.name, nRanks, nNodes)),
      cacheFile_(std::move(cacheFile)), metrics_(metrics)
{
    if (mode_ != TunerMode::Static) {
        acquireTable(hooks);
    }
}

void
Tuner::count(const char* name) const
{
    if (metrics_ != nullptr && metrics_->enabled()) {
        metrics_->counter(std::string("tuner.") + name).add(1);
    }
}

void
Tuner::acquireTable(const Hooks& hooks)
{
    // 1) Try the cache file (both Profile and File modes).
    std::optional<TunerCache> cache;
    if (!cacheFile_.empty()) {
        cache = TunerCache::loadFile(cacheFile_);
        if (!cache) {
            count("cache_errors");
            MSCCLPP_WARN("tuner: cache '%s' missing or invalid%s",
                         cacheFile_.c_str(),
                         mode_ == TunerMode::File
                             ? "; falling back to static selection"
                             : "; re-profiling");
        } else if (const TuningTable* t = cache->find(envKey_)) {
            table_ = std::make_unique<TuningTable>(*t);
            count("cache_loads");
            MSCCLPP_INFO("tuner: loaded table for %s from %s",
                         envKey_.c_str(), cacheFile_.c_str());
            return;
        } else if (mode_ == TunerMode::File) {
            count("cache_errors");
            MSCCLPP_WARN("tuner: cache '%s' has no table for %s; "
                         "falling back to static selection",
                         cacheFile_.c_str(), envKey_.c_str());
        }
    }
    if (mode_ == TunerMode::File) {
        return; // never profile in File mode
    }

    // 2) Profile mode: measure this environment now, in virtual time.
    if (!hooks.profile) {
        MSCCLPP_WARN("tuner: no profile hook; staying on the static "
                     "heuristic");
        return;
    }
    TuningTable measured = hooks.profile();
    count("profile_runs");
    if (measured.empty()) {
        MSCCLPP_WARN("tuner: profiling %s produced no curves; staying "
                     "on the static heuristic",
                     envKey_.c_str());
        return;
    }
    table_ = std::make_unique<TuningTable>(measured);

    // 3) Persist so the next run loads instead of re-profiling.
    if (!cacheFile_.empty()) {
        TunerCache out = cache ? std::move(*cache) : TunerCache{};
        out.put(envKey_, std::move(measured));
        if (out.saveFile(cacheFile_)) {
            count("cache_saves");
            MSCCLPP_INFO("tuner: saved table for %s to %s",
                         envKey_.c_str(), cacheFile_.c_str());
        } else {
            count("cache_errors");
            MSCCLPP_WARN("tuner: cannot write cache '%s'",
                         cacheFile_.c_str());
        }
    }
}

std::optional<std::string>
Tuner::choose(Collective c, std::uint64_t bytes) const
{
    if (table_ == nullptr) {
        return std::nullopt;
    }
    std::optional<std::string> best = table_->best(c, bytes);
    count(best ? "decision_profiled" : "decision_fallback");
    return best;
}

} // namespace mscclpp::tuner
