#include "tuner/table.hpp"

#include "tuner/json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mscclpp::tuner {

const char*
toString(Collective c)
{
    switch (c) {
      case Collective::AllReduce:
        return "allreduce";
      case Collective::AllGather:
        return "allgather";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// LatencyCurve
// ---------------------------------------------------------------------------

void
LatencyCurve::add(std::uint64_t bytes, double ns)
{
    ProfilePoint p{bytes, ns};
    auto it = std::lower_bound(points_.begin(), points_.end(), bytes,
                               [](const ProfilePoint& a,
                                  std::uint64_t b) { return a.bytes < b; });
    if (it != points_.end() && it->bytes == bytes) {
        it->ns = ns; // re-profiled: latest measurement wins
        return;
    }
    points_.insert(it, p);
}

bool
LatencyCurve::covers(std::uint64_t bytes) const
{
    return !points_.empty() && bytes >= points_.front().bytes &&
           bytes <= points_.back().bytes;
}

std::optional<double>
LatencyCurve::lookupNs(std::uint64_t bytes) const
{
    if (!covers(bytes)) {
        return std::nullopt;
    }
    auto hi = std::lower_bound(points_.begin(), points_.end(), bytes,
                               [](const ProfilePoint& a,
                                  std::uint64_t b) { return a.bytes < b; });
    if (hi->bytes == bytes) {
        return hi->ns;
    }
    auto lo = hi - 1;
    // Log-log interpolation: latency curves are near power laws, so
    // interpolating the exponents tracks the measured curve far better
    // than linear interpolation over a 4x geometric grid.
    double t = (std::log2(double(bytes)) - std::log2(double(lo->bytes))) /
               (std::log2(double(hi->bytes)) - std::log2(double(lo->bytes)));
    double logNs =
        std::log2(lo->ns) + t * (std::log2(hi->ns) - std::log2(lo->ns));
    return std::exp2(logNs);
}

// ---------------------------------------------------------------------------
// TuningTable
// ---------------------------------------------------------------------------

void
TuningTable::add(Collective c, const std::string& algo, LatencyCurve curve)
{
    if (curve.empty()) {
        return; // algorithm never ran (e.g. no multimem): no curve
    }
    auto& m = c == Collective::AllReduce ? allReduce_ : allGather_;
    m[algo] = std::move(curve);
}

bool
TuningTable::empty() const
{
    return allReduce_.empty() && allGather_.empty();
}

const std::map<std::string, LatencyCurve>&
TuningTable::curves(Collective c) const
{
    return c == Collective::AllReduce ? allReduce_ : allGather_;
}

std::optional<std::string>
TuningTable::best(Collective c, std::uint64_t bytes) const
{
    const auto& m = curves(c);
    std::optional<std::string> bestAlgo;
    double bestNs = 0.0;
    for (const auto& [algo, curve] : m) {
        std::optional<double> ns = curve.lookupNs(bytes);
        if (ns && (!bestAlgo || *ns < bestNs)) {
            bestAlgo = algo;
            bestNs = *ns;
        }
    }
    return bestAlgo;
}

// ---------------------------------------------------------------------------
// TunerCache
// ---------------------------------------------------------------------------

std::string
TunerCache::envKey(const std::string& envName, int nRanks, int nNodes)
{
    return envName + "/" + std::to_string(nRanks) + "r" +
           std::to_string(nNodes) + "n";
}

const TuningTable*
TunerCache::find(const std::string& key) const
{
    auto it = tables_.find(key);
    return it == tables_.end() ? nullptr : &it->second;
}

void
TunerCache::put(const std::string& key, TuningTable table)
{
    tables_[key] = std::move(table);
}

namespace {

void
appendCurves(std::ostringstream& out,
             const std::map<std::string, LatencyCurve>& curves)
{
    bool firstAlgo = true;
    for (const auto& [algo, curve] : curves) {
        if (!firstAlgo) {
            out << ",";
        }
        firstAlgo = false;
        out << "\"" << json::escape(algo) << "\":[";
        bool firstPt = true;
        for (const ProfilePoint& p : curve.points()) {
            if (!firstPt) {
                out << ",";
            }
            firstPt = false;
            char ns[32];
            std::snprintf(ns, sizeof(ns), "%.3f", p.ns);
            out << "[" << p.bytes << "," << ns << "]";
        }
        out << "]";
    }
}

bool
parseCurves(const json::Value& obj, Collective c, TuningTable& table)
{
    if (!obj.isObject()) {
        return false;
    }
    for (const auto& [algo, pts] : obj.object) {
        if (!pts.isArray()) {
            return false;
        }
        LatencyCurve curve;
        for (const json::Value& pt : pts.array) {
            if (!pt.isArray() || pt.array.size() != 2 ||
                !pt.array[0].isNumber() || !pt.array[1].isNumber() ||
                pt.array[0].number < 1.0 || pt.array[1].number <= 0.0) {
                return false;
            }
            curve.add(static_cast<std::uint64_t>(pt.array[0].number),
                      pt.array[1].number);
        }
        table.add(c, algo, std::move(curve));
    }
    return true;
}

} // namespace

std::string
TunerCache::toJson() const
{
    std::ostringstream out;
    out << "{\"version\":" << kVersion << ",\"tables\":{";
    bool firstEnv = true;
    for (const auto& [key, table] : tables_) {
        if (!firstEnv) {
            out << ",";
        }
        firstEnv = false;
        out << "\"" << json::escape(key) << "\":{\"allreduce\":{";
        appendCurves(out, table.curves(Collective::AllReduce));
        out << "},\"allgather\":{";
        appendCurves(out, table.curves(Collective::AllGather));
        out << "}}";
    }
    out << "}}";
    return out.str();
}

std::optional<TunerCache>
TunerCache::fromJson(const std::string& text)
{
    std::optional<json::Value> root = json::parse(text);
    if (!root || !root->isObject()) {
        return std::nullopt;
    }
    const json::Value* version = root->get("version");
    if (version == nullptr || !version->isNumber() ||
        static_cast<int>(version->number) != kVersion) {
        return std::nullopt; // future or foreign format: refuse
    }
    const json::Value* tables = root->get("tables");
    if (tables == nullptr || !tables->isObject()) {
        return std::nullopt;
    }
    TunerCache cache;
    for (const auto& [key, envTables] : tables->object) {
        TuningTable table;
        const json::Value* ar = envTables.get("allreduce");
        const json::Value* ag = envTables.get("allgather");
        if (ar == nullptr || ag == nullptr ||
            !parseCurves(*ar, Collective::AllReduce, table) ||
            !parseCurves(*ag, Collective::AllGather, table)) {
            return std::nullopt;
        }
        cache.put(key, std::move(table));
    }
    return cache;
}

std::optional<TunerCache>
TunerCache::loadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return fromJson(text.str());
}

bool
TunerCache::saveFile(const std::string& path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        return false;
    }
    out << toJson() << "\n";
    return static_cast<bool>(out);
}

} // namespace mscclpp::tuner
