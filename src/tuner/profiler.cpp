#include "tuner/profiler.hpp"

namespace mscclpp::tuner {

std::vector<std::uint64_t>
profileGrid(const ProfileOptions& opt)
{
    std::vector<std::uint64_t> sizes;
    std::uint64_t growth = opt.growth < 2 ? 2 : opt.growth;
    for (std::uint64_t b = opt.minBytes; b <= opt.maxBytes; b *= growth) {
        sizes.push_back(b);
    }
    // Always anchor the top of the range so interpolation covers the
    // full [minBytes, maxBytes] span even when growth overshoots.
    if (!sizes.empty() && sizes.back() != opt.maxBytes) {
        sizes.push_back(opt.maxBytes);
    }
    return sizes;
}

TuningTable
profile(const std::vector<Candidate>& candidates, const RunFn& run,
        const ProfileOptions& opt, obs::MetricsRegistry* metrics)
{
    const std::vector<std::uint64_t> grid = profileGrid(opt);
    TuningTable table;
    for (const Candidate& c : candidates) {
        LatencyCurve curve;
        for (std::uint64_t bytes : grid) {
            std::optional<double> ns = run(c, bytes);
            if (!ns || *ns <= 0.0) {
                continue; // size not runnable for this algorithm
            }
            curve.add(bytes, *ns);
            if (metrics != nullptr && metrics->enabled()) {
                metrics->counter("tuner.profile_points").add(1);
            }
        }
        table.add(c.collective, c.algo, std::move(curve));
    }
    return table;
}

} // namespace mscclpp::tuner
