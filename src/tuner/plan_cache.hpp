#ifndef MSCCLPP_TUNER_PLAN_CACHE_HPP
#define MSCCLPP_TUNER_PLAN_CACHE_HPP

#include "obs/metrics.hpp"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

namespace mscclpp::tuner {

/**
 * Identity of one prepared launch: which collective, which resolved
 * algorithm (0 = resolved from Auto), the shape, and the element
 * semantics. Keys are per cache instance and caches are per
 * communicator/executor, so two communicators never share plans.
 */
struct PlanKey
{
    int collective = 0;        ///< Collective enum value, or a user tag
    std::uint64_t bytes = 0;   ///< message size (AllGather: per rank)
    std::uint64_t variant = 0; ///< extra discriminator (e.g. program hash)
    int dtype = 0;
    int op = 0;

    bool operator<(const PlanKey& o) const
    {
        if (collective != o.collective) {
            return collective < o.collective;
        }
        if (bytes != o.bytes) {
            return bytes < o.bytes;
        }
        if (variant != o.variant) {
            return variant < o.variant;
        }
        if (dtype != o.dtype) {
            return dtype < o.dtype;
        }
        return op < o.op;
    }
};

/**
 * One memoized launch plan: everything the hot path would otherwise
 * re-derive per call — the algorithm the selector resolved, the launch
 * geometry and chunk schedule, and (for DSL-driven launches) the
 * lowered, validated program held type-erased so the tuner library
 * stays below dsl in the link order.
 */
struct Plan
{
    int algoId = 0;              ///< resolved collective-layer enum value
    std::string algoName;        ///< its toString() form (for reporting)
    int blocks = 0;              ///< kernel launch width
    std::uint64_t chunkBytes = 0; ///< per-peer chunk of the schedule
    std::shared_ptr<const void> program; ///< lowered DSL program, if any
};

/**
 * LRU cache of prepared launch plans, sized for steady-state serving
 * (an LLM decode loop re-issues a handful of shapes thousands of
 * times). Hits, misses and evictions are reported through the obs
 * metrics registry under "<prefix>.hit/miss/evict".
 */
class PlanCache
{
  public:
    explicit PlanCache(std::size_t capacity = 128,
                       obs::MetricsRegistry* metrics = nullptr,
                       std::string metricPrefix = "tuner.plan_cache");

    /** Cached plan for @p key, refreshing its LRU slot; nullptr on
     *  miss. The pointer stays valid until the entry is evicted. */
    const Plan* find(const PlanKey& key);

    /** Insert (or replace) @p key, evicting the LRU entry if full. */
    const Plan& insert(const PlanKey& key, Plan plan);

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    void clear();

  private:
    void count(const char* suffix);

    struct Entry
    {
        PlanKey key;
        Plan plan;
    };

    std::size_t capacity_;
    obs::MetricsRegistry* metrics_;
    std::string prefix_;
    std::list<Entry> lru_; ///< front = most recently used
    std::map<PlanKey, std::list<Entry>::iterator> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace mscclpp::tuner

#endif // MSCCLPP_TUNER_PLAN_CACHE_HPP
