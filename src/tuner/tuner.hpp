#ifndef MSCCLPP_TUNER_TUNER_HPP
#define MSCCLPP_TUNER_TUNER_HPP

#include "fabric/env.hpp"
#include "obs/metrics.hpp"
#include "tuner/profiler.hpp"
#include "tuner/table.hpp"

#include <functional>
#include <memory>
#include <optional>
#include <string>

namespace mscclpp::tuner {

/**
 * Selection policy (MSCCLPP_TUNER):
 *  - Static:  the collective library's built-in size thresholds —
 *             the default, bit-for-bit and timing-identical to the
 *             pre-tuner behaviour.
 *  - Profile: measure this (environment, machine shape) once in
 *             virtual time and select from the measured crossover
 *             table; MSCCLPP_TUNER_CACHE persists tables across runs.
 *  - File:    load the table from MSCCLPP_TUNER_CACHE only; never
 *             profile. Missing/corrupt/mismatched caches fall back to
 *             the static heuristic (logged, never fatal).
 */
enum class TunerMode
{
    Static,
    Profile,
    File,
};

const char* toString(TunerMode m);

/** Parse "static"/"profile"/"file"; nullopt otherwise. */
std::optional<TunerMode> parseTunerMode(const std::string& s);

/**
 * The profile-guided algorithm selector of one communicator. The
 * constructor resolves the mode and — for Profile/File — acquires the
 * environment's tuning table (loading the cache file, or running the
 * injected profile hook). Static mode does no work at all: no file
 * I/O, no profiling machines, no metrics.
 *
 * The profile hook is injected by the collective layer
 * (collective/profile.hpp) because the tuner library sits below it in
 * the dependency order and cannot run collectives itself.
 */
class Tuner
{
  public:
    struct Hooks
    {
        /// Profile this (environment, shape) from scratch; only
        /// invoked in Profile mode on a cache miss.
        std::function<TuningTable()> profile;
    };

    /**
     * @param mode resolved by the caller (communicator options beat
     *        the EnvConfig's MSCCLPP_TUNER value).
     * @param cacheFile empty = no persistence.
     */
    Tuner(TunerMode mode, const fabric::EnvConfig& cfg, int nRanks,
          int nNodes, std::string cacheFile,
          obs::MetricsRegistry* metrics, Hooks hooks);

    TunerMode mode() const { return mode_; }
    const std::string& envKey() const { return envKey_; }

    /** Whether a tuning table is loaded (always false in Static). */
    bool active() const { return table_ != nullptr; }
    const TuningTable* table() const { return table_.get(); }

    /**
     * Profile-guided choice at @p bytes (AllGather: bytes per rank);
     * nullopt in Static mode or for sizes outside the profiled range
     * (the caller then applies its static heuristic).
     */
    std::optional<std::string> choose(Collective c,
                                      std::uint64_t bytes) const;

  private:
    void acquireTable(const Hooks& hooks);
    void count(const char* name) const;

    TunerMode mode_;
    std::string envKey_;
    std::string cacheFile_;
    obs::MetricsRegistry* metrics_;
    std::unique_ptr<TuningTable> table_;
};

} // namespace mscclpp::tuner

#endif // MSCCLPP_TUNER_TUNER_HPP
