#ifndef MSCCLPP_TUNER_PROFILER_HPP
#define MSCCLPP_TUNER_PROFILER_HPP

#include "obs/metrics.hpp"
#include "tuner/table.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace mscclpp::tuner {

/**
 * One algorithm the profiler should sweep. The tuner sits below the
 * collective library in the dependency order, so candidates are
 * described by name and the actual collective runs happen through the
 * RunFn callback the collective layer injects (see
 * collective/profile.hpp for the concrete driver).
 */
struct Candidate
{
    Collective collective = Collective::AllReduce;
    std::string algo; ///< collective-layer toString() name
};

/**
 * Run @p candidate at @p bytes (AllGather sizes are per rank) and
 * return the measured latency in nanoseconds, or nullopt when the
 * algorithm cannot run that size in this environment (scratch limits,
 * alignment, missing hardware). Because the machine is simulated, a
 * "measurement" is exact virtual time — cheap and noise-free.
 */
using RunFn = std::function<std::optional<double>(const Candidate& c,
                                                  std::uint64_t bytes)>;

/** Geometric message-size grid swept per candidate. */
struct ProfileOptions
{
    std::uint64_t minBytes = 1 << 10;
    std::uint64_t maxBytes = 64 << 20;
    /// Grid multiplier; 4x gives 9 sizes across 1 KiB..64 MiB, which
    /// log-log interpolation fills in well (DESIGN.md tuner section).
    std::uint64_t growth = 4;
};

/** The profiled grid sizes for @p opt (shared with benches/tests). */
std::vector<std::uint64_t> profileGrid(const ProfileOptions& opt);

/**
 * Sweep every candidate over the size grid in virtual time and build
 * the per-environment crossover table. Emits `tuner.profile_points`
 * into @p metrics (nullable) as it goes.
 */
TuningTable profile(const std::vector<Candidate>& candidates,
                    const RunFn& run, const ProfileOptions& opt,
                    obs::MetricsRegistry* metrics = nullptr);

} // namespace mscclpp::tuner

#endif // MSCCLPP_TUNER_PROFILER_HPP
