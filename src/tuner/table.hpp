#ifndef MSCCLPP_TUNER_TABLE_HPP
#define MSCCLPP_TUNER_TABLE_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mscclpp::tuner {

/** Collectives the tuner currently covers. */
enum class Collective
{
    AllReduce,
    AllGather,
};

const char* toString(Collective c);

/** One profiled sample: latency of an algorithm at a message size. */
struct ProfilePoint
{
    std::uint64_t bytes = 0;
    double ns = 0.0;
};

/**
 * Measured latency-vs-size curve of one algorithm on one environment.
 * Lookups between profiled sizes interpolate linearly in log-log
 * space (collective latency curves are close to piecewise power laws);
 * sizes outside the profiled range return nullopt so the selector can
 * fall back to the static heuristic instead of extrapolating.
 */
class LatencyCurve
{
  public:
    void add(std::uint64_t bytes, double ns);

    bool empty() const { return points_.empty(); }
    const std::vector<ProfilePoint>& points() const { return points_; }

    /** Whether @p bytes lies inside the profiled size range. */
    bool covers(std::uint64_t bytes) const;

    /** Interpolated latency; nullopt outside the profiled range. */
    std::optional<double> lookupNs(std::uint64_t bytes) const;

  private:
    std::vector<ProfilePoint> points_; ///< sorted by bytes
};

/**
 * All measured curves of one environment: per collective, a map from
 * algorithm *name* (the collective layer's toString form — the tuner
 * sits below the collective library and never sees its enums) to its
 * latency curve. best() is the profile-guided selector core: argmin
 * of the interpolated curves at the requested size.
 */
class TuningTable
{
  public:
    void add(Collective c, const std::string& algo, LatencyCurve curve);

    bool empty() const;
    const std::map<std::string, LatencyCurve>& curves(Collective c) const;

    /**
     * Name of the fastest profiled algorithm at @p bytes; nullopt when
     * no curve covers the size (unprofiled shape -> static fallback).
     */
    std::optional<std::string> best(Collective c,
                                    std::uint64_t bytes) const;

  private:
    std::map<std::string, LatencyCurve> allReduce_;
    std::map<std::string, LatencyCurve> allGather_;
};

/**
 * The on-disk profile cache (MSCCLPP_TUNER_CACHE): tables keyed by
 * environment — "<env name>/<nRanks>r<nNodes>n" — in a versioned JSON
 * file, so one cache file can hold every machine shape a job ever
 * profiled. Loading rejects corrupt or version-mismatched files by
 * returning nullopt; callers fall back to the static heuristic.
 */
class TunerCache
{
  public:
    static constexpr int kVersion = 1;

    /** Cache key of one (environment, machine shape). */
    static std::string envKey(const std::string& envName, int nRanks,
                              int nNodes);

    const TuningTable* find(const std::string& key) const;
    void put(const std::string& key, TuningTable table);
    std::size_t size() const { return tables_.size(); }

    std::string toJson() const;
    static std::optional<TunerCache> fromJson(const std::string& text);

    /** nullopt when the file is missing, unreadable or invalid. */
    static std::optional<TunerCache> loadFile(const std::string& path);

    /** @return false on I/O failure (the tuner logs and carries on). */
    bool saveFile(const std::string& path) const;

  private:
    std::map<std::string, TuningTable> tables_;
};

} // namespace mscclpp::tuner

#endif // MSCCLPP_TUNER_TABLE_HPP
