#ifndef MSCCLPP_TUNER_JSON_HPP
#define MSCCLPP_TUNER_JSON_HPP

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mscclpp::tuner::json {

/**
 * Minimal JSON value used by the tuner cache file (table.cpp). The
 * obs module only ever *writes* JSON; loading a profile cache back in
 * needs a parser too, so the tuner carries this self-contained one —
 * strict enough to reject a corrupt cache (the selector then falls
 * back to the static heuristic) without pulling in a dependency.
 */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup on objects; nullptr when absent or not an object. */
    const Value* get(const std::string& key) const;
};

/** Parse one JSON document; nullopt on any syntax error or trailing
 *  garbage (the caller treats that as a corrupt cache file). */
std::optional<Value> parse(const std::string& text);

/** Escape @p s for embedding inside a JSON string literal. */
std::string escape(const std::string& s);

} // namespace mscclpp::tuner::json

#endif // MSCCLPP_TUNER_JSON_HPP
