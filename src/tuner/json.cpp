#include "tuner/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mscclpp::tuner::json {

const Value*
Value::get(const std::string& key) const
{
    if (kind != Kind::Object) {
        return nullptr;
    }
    for (const auto& [k, v] : object) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    std::optional<Value> run()
    {
        skipWs();
        Value v;
        if (!value(v)) {
            return std::nullopt;
        }
        skipWs();
        if (pos_ != text_.size()) {
            return std::nullopt; // trailing garbage
        }
        return v;
    }

  private:
    bool value(Value& out)
    {
        if (pos_ >= text_.size()) {
            return false;
        }
        switch (text_[pos_]) {
          case '{':
            return object(out);
          case '[':
            return array(out);
          case '"':
            out.kind = Value::Kind::String;
            return string(out.string);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
          default:
            return number(out);
        }
    }

    bool object(Value& out)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(key)) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            Value v;
            if (!value(v)) {
                return false;
            }
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array(Value& out)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            Value v;
            if (!value(v)) {
                return false;
            }
            out.array.push_back(std::move(v));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string(std::string& out)
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size()) {
                    return false;
                }
                char esc = text_[pos_ + 1];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    // \uXXXX: keep the cache ASCII; reject surrogates.
                    if (pos_ + 5 >= text_.size()) {
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 2; i < 6; ++i) {
                        char h = text_[pos_ + i];
                        if (!std::isxdigit(
                                static_cast<unsigned char>(h))) {
                            return false;
                        }
                        code = code * 16 +
                               (std::isdigit(
                                    static_cast<unsigned char>(h))
                                    ? h - '0'
                                    : std::tolower(h) - 'a' + 10);
                    }
                    if (code > 0x7f) {
                        return false;
                    }
                    out += static_cast<char>(code);
                    pos_ += 4;
                    break;
                  }
                  default:
                    return false;
                }
                pos_ += 2;
                continue;
            }
            out += c;
            ++pos_;
        }
        return false; // unterminated
    }

    bool number(Value& out)
    {
        std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            return false;
        }
        char* end = nullptr;
        std::string tok = text_.substr(start, pos_ - start);
        out.kind = Value::Kind::Number;
        out.number = std::strtod(tok.c_str(), &end);
        return end != nullptr && *end == '\0';
    }

    bool literal(const char* word)
    {
        for (const char* p = word; *p != '\0'; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p) {
                return false;
            }
        }
        return true;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Value>
parse(const std::string& text)
{
    return Parser(text).run();
}

std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace mscclpp::tuner::json
